// Deterministic intra-run parallelism (Options.Workers).
//
// One simulation can shard its hot paths over a par.Pool while staying
// bit-identical to the serial engine — the differential tests in
// parallel_test.go enforce identity against both the serial incremental
// engine and the ExactRecompute oracle. Every parallel stage below is a
// fork-join barrier inside the otherwise serial event loop, built so
// that its writes are partitioned deterministically and its merges are
// performed in shard order:
//
//   - Route construction (prepareRoutesParallel): the flow list is cut
//     into contiguous shards, each worker routing its shard into a
//     private path arena. routes[i] is an indexed write, so the DAG is
//     assembled in flow-id order no matter which worker finishes first.
//   - Waterfill fill setup (fillSetupParallel): the occupied-link list
//     is cut into contiguous shards; workers compute per-shard
//     residuals, counts and share histograms, and a serial merge
//     derives per-(shard, count) scatter cursors that reproduce the
//     serial counting sort's array byte for byte. The progressive
//     filling pop loop then consumes an identical array, so the
//     selected bottleneck sequence — and every rate — matches the
//     serial result exactly.
//   - Occupied-list and region sorts (sortIDs): per-shard sorts merged
//     pairwise; sorting is canonical, so the result equals slices.Sort.
//   - Active-set scans (minFinishParallel, advanceParallel): per-shard
//     minima and completion buffers merged in shard order, equal to the
//     serial scan's value and completion order.
//   - Membership maintenance (flushMembership): joins and leaves are
//     queued as an op log and replayed in batch, each worker applying,
//     in log order, exactly the links it owns (link id mod pool size).
//     Per-link state therefore evolves in the serial engine's order —
//     members/memberIdx/slots end up byte-identical — and the dirty and
//     occupancy-flip marks, being flag-guarded sets, merge in worker
//     order without affecting any downstream arithmetic (the closure
//     outcome depends only on the set, and every fill input is sorted).
//
// The float-level determinism argument for the fill phase is in
// incremental.go (properties 1-4); DESIGN.md §12 walks through the
// sharded variants.
package flow

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"mtier/internal/par"
)

// Size gates for the parallel stages: below these the fork-join
// overhead outweighs the shard work, and the serial code runs instead.
// Variables so the differential tests can force every parallel stage on
// at test-sized inputs (see export_test.go).
var (
	parRouteMin = 2048 // flows before route construction shards
	parFillMin  = 4096 // links before a fill's setup shards
	parScanMin  = 4096 // active flows before the epoch scans shard
	parSortMin  = 4096 // elements before sortIDs shards
	parBatchMin = 512  // queued membership ops before a batch replay shards
)

// memOp is one queued membership change: a flow joining (activation) or
// leaving (completion) the links of its route.
type memOp struct {
	id   int32
	join bool
}

// prepareRoutesParallel is the sharded counterpart of prepare's route
// loop. Not used in adaptive mode (routes are chosen at injection time,
// load-dependent and inherently serial). Topologies are documented safe
// for concurrent routing, and fault.Degraded's detour cache is
// mutex-guarded with order-independent results, so shards may route
// concurrently; all outputs (routes[i], latency[i], lost[i]) are
// per-flow indexed writes.
func (s *sim) prepareRoutesParallel(spec *Spec, withLatency bool) error {
	f := len(spec.Flows)
	if s.ft != nil && s.lost == nil {
		// markLost's lazy allocation is not shard-safe; pre-allocate.
		s.lost = make([]bool, f)
	}
	var stop atomic.Bool
	s.pool.ForShards(f, func(shard, lo, hi int) {
		// One wall-clock trace lane per shard, so the flight recorder
		// shows route construction stacking across the pool.
		sp := s.opt.Tracer.BeginTID("flow.routes.shard", "shard", shard+1)
		defer sp.EndArgs(map[string]any{"shard": shard, "flows": hi - lo})
		var local arena
		scratch := make([]int32, 0, 256)
		// Per-shard (src, dst) dedup: repeated pairs within a shard share
		// one arena-backed route slice (reroutes reassign routes[i], never
		// mutate it). Cross-shard repeats are routed again — shards share
		// nothing — so the saving is smaller than the serial loop's, but
		// the common collectives emit a phase's repeats contiguously.
		dedup := make(map[int64][]int32)
		for i := lo; i < hi; i++ {
			// The serial loop honours cancellation every 4096 flows; each
			// shard keeps the same cadence.
			if i&0xfff == 0 && (stop.Load() || s.canceled()) {
				stop.Store(true)
				return
			}
			fl := &spec.Flows[i]
			key := int64(fl.Src)<<32 | int64(uint32(fl.Dst))
			if r, ok := dedup[key]; ok {
				if withLatency {
					s.latency[i] = s.opt.LatencyBase + s.opt.LatencyPerHop*float64(s.routeHops(r))
				}
				s.routes[i] = r
				continue
			}
			if s.ft != nil {
				var ok bool
				scratch, ok = s.ft.RouteAppendOK(scratch[:0], int(fl.Src), int(fl.Dst))
				if !ok {
					s.lost[i] = true
					continue
				}
			} else {
				scratch = s.t.RouteAppend(scratch[:0], int(fl.Src), int(fl.Dst))
			}
			if withLatency {
				s.latency[i] = s.opt.LatencyBase + s.opt.LatencyPerHop*float64(len(scratch))
			}
			r := s.materialiseRouteIn(&local, fl, scratch)
			s.routes[i] = r
			dedup[key] = r
		}
	})
	if stop.Load() || s.canceled() {
		return fmt.Errorf("flow: canceled while preparing routes (%d flows): %w", f, s.ctx.Err())
	}
	if s.stats != nil {
		s.stats.parRoutes.Inc()
	}
	return nil
}

// queueMembership records an activation/completion for the next batch
// replay instead of applying it immediately.
func (s *sim) queueMembership(id int32, join bool) {
	s.memOps = append(s.memOps, memOp{id: id, join: join})
}

// flushMembership applies every queued join/leave to the incremental
// engine's link state. Small batches replay serially (identical to the
// unbatched engine by construction); large ones shard by link
// ownership: worker w applies, in log order, the ops' route links with
// id ≡ w (mod workers). Each link's membership therefore receives the
// same sequence of appends and swap-removes as in the serial engine,
// and every slots[f][i] cell is owned by the worker owning route_f[i],
// so the replay is race-free and byte-identical.
func (s *sim) flushMembership() {
	ops := s.memOps
	if len(ops) == 0 {
		return
	}
	st := &s.inc
	w := s.pool.Workers()
	if len(ops) < parBatchMin || w == 1 {
		for _, op := range ops {
			if op.join {
				st.join(s, op.id)
			} else {
				st.leave(s, op.id)
			}
		}
		s.memOps = ops[:0]
		return
	}
	// Slot arrays are handed out by a shared arena: allocate serially, in
	// log order (flows activate at most once between fault flushes, so a
	// batch holds at most one join per flow).
	for _, op := range ops {
		if op.join {
			st.slots[op.id] = st.slotArena.alloc(len(s.routes[op.id]))
		}
	}
	if len(st.pdirty) < w {
		st.pdirty = append(st.pdirty, make([][]int32, w-len(st.pdirty))...)
		st.poccDirty = append(st.poccDirty, make([][]int32, w-len(st.poccDirty))...)
	}
	s.pool.Run(func(wk int) {
		dirtyBuf := st.pdirty[wk][:0]
		occBuf := st.poccDirty[wk][:0]
		uw := uint32(w)
		for _, op := range ops {
			id := op.id
			route := s.routes[id]
			slots := st.slots[id]
			if op.join {
				for i, l := range route {
					if uint32(l)%uw != uint32(wk) {
						continue
					}
					slots[i] = int32(len(st.members[l]))
					st.members[l] = append(st.members[l], id)
					st.memberIdx[l] = append(st.memberIdx[l], int32(i))
					st.nActive[l]++
					if st.nActive[l] == 1 && !st.occDirtyOn[l] {
						st.occDirtyOn[l] = true
						occBuf = append(occBuf, l)
					}
					if !st.dirtyOn[l] {
						st.dirtyOn[l] = true
						dirtyBuf = append(dirtyBuf, l)
					}
				}
			} else {
				for i, l := range route {
					if uint32(l)%uw != uint32(wk) {
						continue
					}
					k := slots[i]
					mem, idx := st.members[l], st.memberIdx[l]
					last := int32(len(mem) - 1)
					if k != last {
						m, mi := mem[last], idx[last]
						mem[k], idx[k] = m, mi
						st.slots[m][mi] = k
					}
					st.members[l] = mem[:last]
					st.memberIdx[l] = idx[:last]
					st.nActive[l]--
					if st.nActive[l] == 0 && !st.occDirtyOn[l] {
						st.occDirtyOn[l] = true
						occBuf = append(occBuf, l)
					}
					if !st.dirtyOn[l] {
						st.dirtyOn[l] = true
						dirtyBuf = append(dirtyBuf, l)
					}
				}
			}
		}
		st.pdirty[wk] = dirtyBuf
		st.poccDirty[wk] = occBuf
	})
	// Merge the flag-guarded mark sets in worker order (each link appears
	// in exactly one worker's buffer), and clear the left flows' slots.
	for wk := 0; wk < w; wk++ {
		st.dirty = append(st.dirty, st.pdirty[wk]...)
		st.occDirty = append(st.occDirty, st.poccDirty[wk]...)
	}
	for _, op := range ops {
		if !op.join {
			st.slots[op.id] = nil
		}
	}
	s.memOps = ops[:0]
	if s.stats != nil {
		s.stats.parBatches.Inc()
	}
}

// fillSetupParallel builds the counting-sorted (share, link) array for
// fillSorted over contiguous link shards: parallel residual/count
// reset with per-shard occupancy histograms, a serial merge that
// assigns each (shard, count) pair its scatter cursor — shard order
// inside a count bucket is id order, because the shards are contiguous
// slices of an id-ascending list — and a parallel stable scatter. The
// resulting array is byte-identical to fillSetupSerial's.
func (s *sim) fillSetupParallel(links []int32) {
	st := &s.inc
	w := s.pool.Workers()
	if len(st.pmax) < w {
		st.pmax = append(st.pmax, make([]int32, w-len(st.pmax))...)
		st.pcnt = append(st.pcnt, make([][]int32, w-len(st.pcnt))...)
		st.pcur = append(st.pcur, make([][]int32, w-len(st.pcur))...)
	}
	// ForShards skips empty shards, which would leave their pmax entries
	// stale from an earlier, larger fill.
	for i := range st.pmax[:w] {
		st.pmax[i] = 0
	}
	s.pool.ForShards(len(links), func(shard, lo, hi int) {
		maxC := int32(0)
		for _, l := range links[lo:hi] {
			c := st.nActive[l]
			s.residual[l] = s.cap
			s.count[l] = c
			if c > maxC {
				maxC = c
			}
		}
		st.pmax[shard] = maxC
	})
	maxC := int32(0)
	for _, m := range st.pmax[:w] {
		if m > maxC {
			maxC = m
		}
	}
	if int(maxC) >= len(st.shr) {
		st.shr = append(st.shr, make([]float64, int(maxC)+1-len(st.shr))...)
	}
	for wk := 0; wk < w; wk++ {
		if int(maxC) >= len(st.pcnt[wk]) {
			st.pcnt[wk] = append(st.pcnt[wk], make([]int32, int(maxC)+1-len(st.pcnt[wk]))...)
			st.pcur[wk] = append(st.pcur[wk], make([]int32, int(maxC)+1-len(st.pcur[wk]))...)
		}
	}
	s.pool.ForShards(len(links), func(shard, lo, hi int) {
		cnt := st.pcnt[shard]
		for _, l := range links[lo:hi] {
			cnt[s.count[l]]++
		}
	})
	// Bucket offsets in (count descending, id ascending) order, exactly
	// as the serial counting sort lays them out; one division per
	// distinct count.
	off := int32(0)
	for c := maxC; c >= 1; c-- {
		total := int32(0)
		for wk := 0; wk < w; wk++ {
			total += st.pcnt[wk][c]
		}
		if total == 0 {
			continue
		}
		st.shr[c] = s.cap / float64(c)
		cur := off
		for wk := 0; wk < w; wk++ {
			st.pcur[wk][c] = cur
			cur += st.pcnt[wk][c]
		}
		off += total
	}
	if cap(st.arr) < len(links) {
		st.arr = make([]heapEntry, len(links))
	}
	arr := st.arr[:len(links)]
	s.pool.ForShards(len(links), func(shard, lo, hi int) {
		cur := st.pcur[shard]
		for _, l := range links[lo:hi] {
			c := s.count[l]
			arr[cur[c]] = heapEntry{st.shr[c], l}
			cur[c]++
		}
	})
	// Histograms must read all-zero at the next fill.
	for wk := 0; wk < w; wk++ {
		cnt := st.pcnt[wk]
		for c := maxC; c >= 1; c-- {
			cnt[c] = 0
		}
	}
	if s.stats != nil {
		s.stats.parFills.Inc()
	}
}

// sortIDs sorts a slice of link ids ascending, equal to slices.Sort but
// sharded for large inputs: parallel shard sorts followed by pairwise
// run merges (parallel across pairs, log₂(workers) passes). Sorting is
// canonical, so the result is identical no matter the partitioning.
func (s *sim) sortIDs(a []int32) {
	if s.pool == nil || len(a) < parSortMin {
		slices.Sort(a)
		return
	}
	st := &s.inc
	w := s.pool.Workers()
	s.pool.ForShards(len(a), func(shard, lo, hi int) {
		slices.Sort(a[lo:hi])
	})
	if cap(st.sortBuf) < len(a) {
		st.sortBuf = make([]int32, len(a))
	}
	bounds := st.sortBounds[:0]
	for shard := 0; shard < w; shard++ {
		lo, hi := par.Shard(len(a), shard, w)
		if lo < hi {
			bounds = append(bounds, int32(lo))
		}
	}
	bounds = append(bounds, int32(len(a)))
	src, dst := a, st.sortBuf[:len(a)]
	for len(bounds) > 2 {
		pairs := (len(bounds) - 1) / 2
		s.pool.Run(func(wk int) {
			for pi := wk; pi < pairs; pi += w {
				lo, mid, hi := int(bounds[2*pi]), int(bounds[2*pi+1]), int(bounds[2*pi+2])
				mergeInt32(dst[lo:hi], src[lo:mid], src[mid:hi])
			}
		})
		if (len(bounds)-1)%2 == 1 {
			lo, hi := int(bounds[len(bounds)-2]), int(bounds[len(bounds)-1])
			copy(dst[lo:hi], src[lo:hi])
		}
		// Collapse pair boundaries in place: position k reads index 2k,
		// so writes never overtake reads.
		out := bounds[:0]
		for i := 0; i < len(bounds); i += 2 {
			out = append(out, bounds[i])
		}
		if (len(bounds)-1)%2 == 1 {
			out = append(out, bounds[len(bounds)-1])
		}
		bounds = out
		src, dst = dst, src
	}
	st.sortBounds = bounds[:0]
	if &src[0] != &a[0] {
		copy(a, src)
	}
	if s.stats != nil {
		s.stats.parSorts.Inc()
	}
}

// mergeInt32 merges two sorted runs into dst (len(dst) = len(a)+len(b)).
func mergeInt32(dst, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// minFinishParallel is the sharded earliest-completion scan: per-shard
// minima merged in shard order. Minimum over non-NaN float64s is
// order-independent, so the value equals the serial scan's bit for bit.
func (s *sim) minFinishParallel() float64 {
	w := s.pool.Workers()
	if cap(s.parTmin) < w {
		s.parTmin = make([]float64, w)
	}
	pt := s.parTmin[:w]
	for i := range pt {
		pt[i] = math.Inf(1)
	}
	s.pool.ForShards(len(s.active), func(shard, lo, hi int) {
		tm := math.Inf(1)
		for _, id := range s.active[lo:hi] {
			if fin := s.remaining[id] / s.rate[id]; fin < tm {
				tm = fin
			}
		}
		pt[shard] = tm
	})
	tmin := math.Inf(1)
	for _, tm := range pt {
		if tm < tmin {
			tmin = tm
		}
	}
	if s.stats != nil {
		s.stats.parScans.Inc()
	}
	return tmin
}

// advanceParallel is the sharded progress scan: remaining[id] updates
// are per-flow indexed writes, and per-shard completion buffers are
// concatenated in shard order — the active-list order the serial scan
// produces.
func (s *sim) advanceParallel(dt float64, completed []int32) []int32 {
	w := s.pool.Workers()
	if len(s.parDone) < w {
		s.parDone = append(s.parDone, make([][]int32, w-len(s.parDone))...)
	}
	// ForShards skips empty shards; truncate every buffer up front so a
	// shrunken active set cannot leak a previous scan's completions.
	for i := range s.parDone[:w] {
		s.parDone[i] = s.parDone[i][:0]
	}
	s.pool.ForShards(len(s.active), func(shard, lo, hi int) {
		buf := s.parDone[shard][:0]
		for _, id := range s.active[lo:hi] {
			adv := s.rate[id] * dt
			if s.remaining[id] <= adv*(1+1e-12) {
				buf = append(buf, id)
			} else {
				s.remaining[id] -= adv
			}
		}
		s.parDone[shard] = buf
	})
	for shard := 0; shard < w; shard++ {
		completed = append(completed, s.parDone[shard]...)
	}
	return completed
}

package flow

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"

	"mtier/internal/obs"
)

// TestProbeSnapshots: an attached probe must see exactly one snapshot per
// rate-recomputation epoch, with a valid bottleneck and monotone times.
func TestProbeSnapshots(t *testing.T) {
	tor := cube(t, 4)
	n := tor.NumEndpoints()
	spec := &Spec{}
	for i := 0; i < 200; i++ {
		spec.Add(i%n, (i*7+3)%n, 1e6*float64(1+i%5))
	}
	rec := obs.NewEpochRecorder(nil)
	res, err := Simulate(tor, spec, Options{Probe: rec})
	if err != nil {
		t.Fatal(err)
	}
	snaps := rec.Snapshots()
	if len(snaps) != res.Epochs {
		t.Fatalf("probe saw %d snapshots, result reports %d epochs", len(snaps), res.Epochs)
	}
	if len(snaps) == 0 {
		t.Fatal("no epochs recorded")
	}
	maxLink := int32(tor.NumLinks() + 2*n) // topology links + virtual ports
	lastSim := -1.0
	for i, s := range snaps {
		if s.Epoch != i+1 {
			t.Fatalf("epoch ordinal %d at index %d", s.Epoch, i)
		}
		if s.SimTime < lastSim {
			t.Fatalf("sim time went backwards: %g after %g", s.SimTime, lastSim)
		}
		lastSim = s.SimTime
		if s.ActiveFlows <= 0 {
			t.Fatalf("epoch %d recorded %d active flows", s.Epoch, s.ActiveFlows)
		}
		if s.BottleneckLink < 0 || s.BottleneckLink >= maxLink {
			t.Fatalf("epoch %d bottleneck link %d out of range [0,%d)", s.Epoch, s.BottleneckLink, maxLink)
		}
		if s.BottleneckShare <= 0 || s.BottleneckShare > DefaultBandwidth*(1+1e-9) {
			t.Fatalf("epoch %d bottleneck share %g outside (0, capacity]", s.Epoch, s.BottleneckShare)
		}
	}
	// The congested start must leave each flow less than full line rate.
	if snaps[0].BottleneckShare >= DefaultBandwidth {
		t.Fatalf("first epoch share %g, expected congestion below %g", snaps[0].BottleneckShare, float64(DefaultBandwidth))
	}

	// The exported CSV is one header plus one row per epoch.
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("probe CSV does not parse: %v", err)
	}
	if len(rows) != res.Epochs+1 {
		t.Fatalf("CSV rows = %d, want %d", len(rows), res.Epochs+1)
	}
}

// TestProbeDoesNotChangeResult: attaching a probe must be purely
// observational.
func TestProbeDoesNotChangeResult(t *testing.T) {
	tor := cube(t, 4)
	n := tor.NumEndpoints()
	spec := &Spec{}
	for i := 0; i < 300; i++ {
		spec.Add(i%n, (i*11+1)%n, 5e5*float64(1+i%7))
	}
	opt := Options{RelEpsilon: 0.01, RefreshFraction: 1.0 / 16, LatencyBase: 5e-7, LatencyPerHop: 1e-6}
	plain, err := Simulate(tor, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Probe = obs.NewEpochRecorder(nil)
	probed, err := Simulate(tor, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != probed.Makespan || plain.Epochs != probed.Epochs {
		t.Fatalf("probe perturbed the simulation: %+v vs %+v", plain, probed)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

// TestTraceWriteErrorSurfaces: a failing trace writer must fail the
// simulation instead of silently truncating the CSV.
func TestTraceWriteErrorSurfaces(t *testing.T) {
	tor := ring(t, 8)
	spec := &Spec{}
	prev := int32(-1)
	for i := 0; i < 16; i++ {
		if prev < 0 {
			prev = spec.Add(0, 1, 1e6)
		} else {
			prev = spec.Add(i%8, (i+1)%8, 1e6, prev)
		}
	}
	_, err := Simulate(tor, spec, Options{Trace: &failWriter{n: 40}})
	if err == nil {
		t.Fatal("Simulate succeeded despite trace write failure")
	}
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("error does not wrap the write failure: %v", err)
	}
	// A writer with room for everything still succeeds.
	if _, err := Simulate(tor, spec, Options{Trace: &failWriter{n: 1 << 20}}); err != nil {
		t.Fatalf("unexpected error with working writer: %v", err)
	}
}

package flow

import (
	"testing"
	"testing/quick"

	"mtier/internal/xrand"
)

// lowerBound computes the provable makespan floor for a dependency-free
// workload on a ported network: every endpoint's inbound and outbound
// volume serialises on its ports, and the network cannot beat the busiest
// port.
func lowerBound(spec *Spec) float64 {
	in := map[int32]float64{}
	out := map[int32]float64{}
	for i := range spec.Flows {
		f := &spec.Flows[i]
		out[f.Src] += f.Bytes
		in[f.Dst] += f.Bytes
	}
	max := 0.0
	for _, v := range in {
		if v > max {
			max = v
		}
	}
	for _, v := range out {
		if v > max {
			max = v
		}
	}
	return max / DefaultBandwidth
}

// TestMakespanRespectsPortBound: the simulated makespan can never beat the
// injection/ejection serialisation bound (quick-checked over random
// dependency-free workloads).
func TestMakespanRespectsPortBound(t *testing.T) {
	tor := cube(t, 4)
	n := tor.NumEndpoints()
	f := func(seed int64, count uint8) bool {
		rng := xrand.New(seed)
		spec := &Spec{}
		for i := 0; i < int(count)+2; i++ {
			spec.Add(rng.Intn(n), rng.IntnExcept(n, rng.Intn(n)), 1e5*float64(1+rng.Intn(50)))
		}
		res, err := Simulate(tor, spec, Options{})
		if err != nil {
			return false
		}
		return res.Makespan >= lowerBound(spec)*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMakespanMonotoneInVolume: scaling every flow up cannot reduce the
// makespan.
func TestMakespanMonotoneInVolume(t *testing.T) {
	tor := cube(t, 4)
	n := tor.NumEndpoints()
	rng := xrand.New(31)
	base := &Spec{}
	for i := 0; i < 150; i++ {
		base.Add(rng.Intn(n), rng.IntnExcept(n, rng.Intn(n)), 1e5*float64(1+rng.Intn(9)))
	}
	scaled := &Spec{Flows: make([]Flow, len(base.Flows))}
	copy(scaled.Flows, base.Flows)
	for i := range scaled.Flows {
		scaled.Flows[i].Bytes *= 2
	}
	a, err := Simulate(tor, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(tor, scaled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Makespan < a.Makespan {
		t.Fatalf("doubling volume reduced makespan: %g -> %g", a.Makespan, b.Makespan)
	}
	// With flow-count-invariant routing, doubling sizes exactly doubles
	// the bandwidth-dominated makespan.
	ratio := b.Makespan / a.Makespan
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("expected ~2x makespan, got %gx", ratio)
	}
}

// TestAddingFlowNeverSpeedsUp: appending an independent flow cannot lower
// the completion time of the workload.
func TestAddingFlowNeverSpeedsUp(t *testing.T) {
	tor := cube(t, 3)
	n := tor.NumEndpoints()
	rng := xrand.New(41)
	spec := &Spec{}
	for i := 0; i < 60; i++ {
		spec.Add(rng.Intn(n), rng.IntnExcept(n, rng.Intn(n)), 1e6)
	}
	before, err := Simulate(tor, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Add(0, n-1, 5e6)
	after, err := Simulate(tor, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Makespan < before.Makespan*(1-1e-9) {
		t.Fatalf("extra flow reduced makespan: %g -> %g", before.Makespan, after.Makespan)
	}
}

// TestAggregateBandwidthBound: makespan must also respect the whole-network
// capacity: total bytes x hops cannot exceed links x capacity x time.
func TestAggregateBandwidthBound(t *testing.T) {
	tor := cube(t, 4)
	n := tor.NumEndpoints()
	rng := xrand.New(51)
	spec := &Spec{}
	for i := 0; i < 500; i++ {
		spec.Add(rng.Intn(n), rng.IntnExcept(n, rng.Intn(n)), 2e6)
	}
	res, err := Simulate(tor, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aggBound := res.HopBytes / (float64(tor.NumLinks()) * DefaultBandwidth)
	if res.Makespan < aggBound*(1-1e-9) {
		t.Fatalf("makespan %g beats aggregate capacity bound %g", res.Makespan, aggBound)
	}
}

// Package flow implements the flow-level network simulation engine, the
// Go equivalent of the INRFlow framework the paper's evaluation runs on.
//
// The model: every link has a capacity; a workload is a DAG of flows
// (source endpoint, destination endpoint, size in bytes) whose edges are
// causal dependencies — a flow is injected only once all its prerequisites
// have completed. Active flows share link bandwidth max-min fairly
// (progressive filling). Time advances from completion epoch to completion
// epoch; the simulation output is the completion time of the whole DAG,
// the figure of merit of the paper's Figures 4 and 5.
//
// Endpoint injection and ejection ports are modelled as dedicated virtual
// links (one in, one out per endpoint) with the same capacity as network
// links, which reproduces the serialisation at the consumption port that
// dominates the paper's Reduce workload.
package flow

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"mtier/internal/obs"
	"mtier/internal/par"
	"mtier/internal/topo"
	"mtier/internal/trace"
)

// DefaultBandwidth is the default link capacity in bytes/second: the
// 10 Gbps transceivers of the QFDBs.
const DefaultBandwidth = 1.25e9

// Flow is one message transfer between two endpoints.
type Flow struct {
	Src, Dst int32
	Bytes    float64
	// Deps lists the flow ids that must complete before this flow is
	// injected.
	Deps []int32
	// Start is a release time in seconds: the flow may not begin moving
	// data before this instant, even once its dependencies complete. Zero
	// (the default) keeps the classic dependency-only semantics. The
	// open-system scheduler uses it to inject whole jobs into a shared
	// fabric at their scheduled start times.
	Start float64
}

// Spec is a workload: a DAG of flows.
type Spec struct {
	Flows []Flow
}

// Add appends a flow and returns its id, for use as a dependency of later
// flows.
func (s *Spec) Add(src, dst int, bytes float64, deps ...int32) int32 {
	id := int32(len(s.Flows))
	s.Flows = append(s.Flows, Flow{Src: int32(src), Dst: int32(dst), Bytes: bytes, Deps: deps})
	return id
}

// AddAt appends a flow released no earlier than `start` seconds and
// returns its id. Alongside Add it lets one Spec interleave several jobs
// on a shared fabric, each gated to its own activation epoch.
func (s *Spec) AddAt(src, dst int, bytes, start float64, deps ...int32) int32 {
	id := int32(len(s.Flows))
	s.Flows = append(s.Flows, Flow{Src: int32(src), Dst: int32(dst), Bytes: bytes, Start: start, Deps: deps})
	return id
}

// TotalBytes sums the sizes of all flows.
func (s *Spec) TotalBytes() float64 {
	t := 0.0
	for i := range s.Flows {
		t += s.Flows[i].Bytes
	}
	return t
}

// Options tunes a simulation run. The zero value is ready to use. The
// JSON tags define how the options appear inside a run record; the
// attached writers and probes are process-local and excluded.
type Options struct {
	// LinkBandwidth is the capacity of every link in bytes/second.
	// 0 means DefaultBandwidth.
	LinkBandwidth float64 `json:"link_bandwidth,omitempty"`
	// RelEpsilon batches flow completions that fall within a relative
	// window of the earliest one, trading a bounded (~RelEpsilon) error in
	// the makespan for far fewer rate recomputations. 0 means exact
	// simulation; the experiment presets use 0.01.
	RelEpsilon float64 `json:"rel_epsilon,omitempty"`
	// LatencyBase is a fixed startup delay (seconds) added to every flow
	// before its data starts moving (NIC/protocol overhead). Default 0.
	LatencyBase float64 `json:"latency_base,omitempty"`
	// LatencyPerHop adds a delay proportional to the route's network hop
	// count (switch/router traversal). Together with LatencyBase it makes
	// path length matter for fine-grained, causality-bound workloads such
	// as Sweep3D, as in the paper. Default 0 (pure bandwidth model).
	LatencyPerHop float64 `json:"latency_per_hop,omitempty"`
	// RefreshFraction defers the max-min rate recomputation until at least
	// this fraction of the active flows has completed since the last one
	// (recomputation always happens when new flows activate). Between
	// refreshes the previous rates are kept — they remain feasible when
	// flows leave, merely conceding the freed bandwidth until the next
	// refresh, so the result is a slight, bounded over-estimate of the
	// makespan. 0 recomputes every epoch (exact); the experiment presets
	// use 1/16.
	RefreshFraction float64 `json:"refresh_fraction,omitempty"`
	// ExactRecompute disables the incremental engine and rebuilds every
	// touched link's residual capacity, flow count and member list from
	// scratch at each rate recomputation — the original full waterfill,
	// kept as the reference implementation and differential-test oracle.
	// The default (false) maintains per-link state persistently and
	// re-waterfills only the dirty connected component of each epoch; the
	// two engines produce bit-identical results (see incremental.go).
	ExactRecompute bool `json:"exact_recompute,omitempty"`
	// AdaptiveRouting picks, for each flow at injection time, the
	// least-loaded of the topology's candidate routes (topologies
	// implementing topo.MultiRouter; ignored otherwise). Load is the
	// current number of active flows on the candidate's busiest link.
	AdaptiveRouting bool `json:"adaptive_routing,omitempty"`
	// DisablePorts turns off the injection/ejection port model, leaving
	// only topology links as shared resources.
	DisablePorts bool `json:"disable_ports,omitempty"`
	// Workers bounds the engine's intra-run parallelism: route
	// construction, large waterfill setups, membership batches and
	// active-set scans are sharded across a worker pool (see
	// parallel.go). 0 means GOMAXPROCS; 1 runs the exact serial code
	// path. Results are bit-identical for every value — the parallel
	// stages reproduce the serial engine's arithmetic and orderings
	// exactly — so Workers is process-local tuning: it is excluded from
	// run records and therefore from sweep fingerprints and journal cell
	// keys, and a journal written by a serial run resumes cleanly under
	// a parallel one.
	Workers int `json:"-"`
	// RecordFlowEnds retains each flow's completion time in the result.
	RecordFlowEnds bool `json:"record_flow_ends,omitempty"`
	// Trace, when non-nil, receives one CSV record per completed flow:
	// id,src,dst,bytes,start,end (start is the activation instant, after
	// dependencies and latency). Records are emitted in completion order.
	// The first write error aborts further records and is returned by
	// Simulate, so a full disk cannot silently truncate a trace.
	Trace io.Writer `json:"-"`
	// Probe, when non-nil, receives one obs.EpochSnapshot per rate
	// recomputation: the simulated time, active-flow count, tightest
	// bottleneck link with its fair share, and the recomputation's
	// wall-clock cost. With a nil probe the instrumentation costs a single
	// branch per epoch.
	Probe obs.Probe `json:"-"`
	// Tracer, when non-nil, receives flight-recorder events: wall-clock
	// spans around route preparation and every waterfill, per-shard spans
	// from the worker pool, and sim-time epoch counters, bottleneck and
	// fault instants. Export with trace.Recorder.WriteTraceEvents (Chrome
	// trace_event JSON). The sim-domain events are deterministic for a
	// fixed seed, across repeated runs and across Workers settings.
	Tracer *trace.Recorder `json:"-"`
	// HotspotK, when positive, computes per-link/per-tier hot-spot
	// attribution into Result.Hotspots: the K hottest topology links by
	// time-integrated utilisation plus per-tier utilisation histograms
	// and path composition (topologies implementing topo.Tiered break
	// down by tier; others report one tier). Deterministic for a fixed
	// seed. Zero disables the report.
	HotspotK int `json:"hotspot_k,omitempty"`
	// Metrics, when non-nil, receives the engine's aggregate counters
	// (epochs, full vs. incremental recomputations, dirty-set sizes, links
	// re-waterfilled). Process-local, excluded from run records.
	Metrics *obs.Registry `json:"-"`
	// FaultEvents schedules mid-simulation link failures: at each event's
	// time the listed topology links go down, active flows crossing them
	// are deactivated and re-admitted on a detour route (or reported as
	// disconnected when none survives), and flows injected later route
	// around the dead links. Events must be sorted by non-decreasing
	// time. Requires a topology that implements Rerouter, such as
	// fault.Degraded; see fault.go.
	FaultEvents []FaultEvent `json:"fault_events,omitempty"`
}

// Validate checks the numeric options for values that would silently
// corrupt the simulation (negative or NaN bandwidth, epsilons, latencies).
// Simulate calls it on entry; it is exported so configuration layers can
// fail fast before building topologies and workloads.
func (o *Options) Validate() error {
	if o.LinkBandwidth < 0 || math.IsNaN(o.LinkBandwidth) || math.IsInf(o.LinkBandwidth, 0) {
		return fmt.Errorf("flow: invalid LinkBandwidth %g", o.LinkBandwidth)
	}
	if o.RelEpsilon < 0 || math.IsNaN(o.RelEpsilon) || math.IsInf(o.RelEpsilon, 0) {
		return fmt.Errorf("flow: invalid RelEpsilon %g (want a small non-negative batching window)", o.RelEpsilon)
	}
	if o.RefreshFraction < 0 || o.RefreshFraction > 1 || math.IsNaN(o.RefreshFraction) {
		return fmt.Errorf("flow: RefreshFraction %g out of [0,1]", o.RefreshFraction)
	}
	if o.LatencyBase < 0 || math.IsNaN(o.LatencyBase) || math.IsInf(o.LatencyBase, 0) {
		return fmt.Errorf("flow: invalid LatencyBase %g", o.LatencyBase)
	}
	if o.LatencyPerHop < 0 || math.IsNaN(o.LatencyPerHop) || math.IsInf(o.LatencyPerHop, 0) {
		return fmt.Errorf("flow: invalid LatencyPerHop %g", o.LatencyPerHop)
	}
	if o.Workers < 0 {
		return fmt.Errorf("flow: negative Workers %d", o.Workers)
	}
	if o.HotspotK < 0 {
		return fmt.Errorf("flow: negative HotspotK %d", o.HotspotK)
	}
	for i, ev := range o.FaultEvents {
		if ev.Time < 0 || math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
			return fmt.Errorf("flow: fault event %d: invalid time %g", i, ev.Time)
		}
		if i > 0 && ev.Time < o.FaultEvents[i-1].Time {
			return fmt.Errorf("flow: fault events out of order: event %d at t=%g before event %d at t=%g",
				i, ev.Time, i-1, o.FaultEvents[i-1].Time)
		}
	}
	return nil
}

// Result reports the outcome of a simulation. The JSON tags define the
// result section of a run record.
type Result struct {
	// Makespan is the completion time of the whole workload, in seconds.
	Makespan float64 `json:"makespan"`
	// FlowEnds holds per-flow completion times when requested.
	FlowEnds []float64 `json:"flow_ends,omitempty"`
	// Epochs is the number of rate recomputations performed.
	Epochs int `json:"epochs"`
	// BytesDelivered is the total traffic volume.
	BytesDelivered float64 `json:"bytes_delivered"`
	// HopBytes is the sum over flows of bytes × network hops traversed —
	// the raw input of dynamic-energy estimation (ports excluded).
	HopBytes float64 `json:"hop_bytes"`
	// MaxLinkUtilization is the busiest topology link's delivered bytes
	// divided by its capacity × makespan (ports excluded).
	MaxLinkUtilization float64 `json:"max_link_utilization"`
	// MeanLinkUtilization averages utilisation over topology links that
	// carried any traffic.
	MeanLinkUtilization float64 `json:"mean_link_utilization"`
	// MaxPortUtilization is the busiest injection/ejection port's
	// utilisation (0 when ports are disabled).
	MaxPortUtilization float64 `json:"max_port_utilization"`
	// Hotspots is the per-link/per-tier hot-spot attribution, present
	// only when Options.HotspotK > 0 (see hotspots.go).
	Hotspots *HotspotReport `json:"hotspots,omitempty"`

	// The remaining fields are only produced by degraded-mode runs (a
	// fault-wrapped topology or Options.FaultEvents); they stay zero —
	// and absent from the JSON form — on pristine fabrics.

	// ReroutedFlows counts flows re-admitted on a detour after a fault
	// event killed a link on their route.
	ReroutedFlows int `json:"rerouted_flows,omitempty"`
	// DisconnectedFlows counts flows whose endpoint pair had no surviving
	// path: they are dropped at injection (or mid-flight at a fault
	// event) and their dependents released, so the rest of the workload
	// still completes.
	DisconnectedFlows int `json:"disconnected_flows,omitempty"`
	// LostBytes is the traffic volume those flows never delivered.
	LostBytes float64 `json:"lost_bytes,omitempty"`
}

// shareHeap is a specialised min-heap of (share, link) pairs for
// progressive filling. It avoids container/heap's interface boxing, which
// dominates the profile on large active sets.
//
// Entries are ordered by share with ties broken on the link id, so the
// ordering is a strict total order. That makes the sequence of pop values
// a pure function of the multiset of entries — independent of insertion
// order and internal heap layout — which is what lets the incremental
// engine recompute only a region of the network and still reproduce the
// reference waterfill's bottleneck sequence bit for bit (see
// incremental.go).
type shareHeap struct {
	share []float64
	link  []int32
}

func (h *shareHeap) reset() {
	h.share = h.share[:0]
	h.link = h.link[:0]
}

// before reports whether entry i sorts strictly before entry j.
func (h *shareHeap) before(i, j int) bool {
	return h.share[i] < h.share[j] || (h.share[i] == h.share[j] && h.link[i] < h.link[j])
}

// push appends and sifts up.
func (h *shareHeap) push(share float64, link int32) {
	h.share = append(h.share, share)
	h.link = append(h.link, link)
	i := len(h.link) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h.share[parent], h.share[i] = h.share[i], h.share[parent]
		h.link[parent], h.link[i] = h.link[i], h.link[parent]
		i = parent
	}
}

// pop removes and returns the minimum entry.
func (h *shareHeap) pop() (float64, int32) {
	top, lnk := h.share[0], h.link[0]
	n := len(h.link) - 1
	h.share[0], h.link[0] = h.share[n], h.link[n]
	h.share, h.link = h.share[:n], h.link[:n]
	h.siftDown(0)
	return top, lnk
}

func (h *shareHeap) siftDown(i int) {
	n := len(h.link)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.before(r, l) {
			m = r
		}
		if !h.before(m, i) {
			return
		}
		h.share[i], h.share[m] = h.share[m], h.share[i]
		h.link[i], h.link[m] = h.link[m], h.link[i]
		i = m
	}
}

// init heapifies the current contents.
func (h *shareHeap) init() {
	for i := len(h.link)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// pendHeap is a min-heap of (activation time, flow id) used by the latency
// model.
type pendHeap struct {
	at []float64
	id []int32
}

func (h *pendHeap) Len() int           { return len(h.id) }
func (h *pendHeap) Less(i, j int) bool { return h.at[i] < h.at[j] }
func (h *pendHeap) Swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}
func (h *pendHeap) Push(x any) {
	p := x.(pendEntry)
	h.at = append(h.at, p.at)
	h.id = append(h.id, p.id)
}
func (h *pendHeap) Pop() any {
	n := len(h.id) - 1
	e := pendEntry{h.at[n], h.id[n]}
	h.at = h.at[:n]
	h.id = h.id[:n]
	return e
}

type pendEntry struct {
	at float64
	id int32
}

// sim is the mutable state of one simulation run.
type sim struct {
	t   topo.Topology
	opt Options
	cap float64

	// Cancellation state: ctxDone is nil when the caller's context can
	// never be canceled (context.Background), which reduces the per-epoch
	// cancellation check to a single nil comparison.
	ctx     context.Context
	ctxDone <-chan struct{}

	numEndpoints int
	numTopoLinks int
	numLinks     int // topology links + virtual ports

	routes [][]int32
	flows  []Flow

	indeg      []int32
	childStart []int32
	childList  []int32

	remaining []float64
	rate      []float64
	starts    []float64 // activation instants (trace mode only)
	frozenAt  []int64   // epoch at which the flow's rate was frozen
	ends      []float64

	latency []float64 // per-flow injection latency
	pending pendHeap  // flows waiting out their latency phase

	done int // completed (or lost) flows

	active    []int32
	activePos []int32

	residual  []float64
	count     []int32
	stamp     []int64
	linkFlows [][]int32
	touched   []int32
	epoch     int64

	linkBytes []float64
	heap      shareHeap
	work      workHeap // incremental engine's working heap (see incremental.go)
	dirty     bool     // active set gained flows since the last waterfill

	// Incremental engine state (see incremental.go); nil slices when
	// opt.ExactRecompute selects the reference full waterfill.
	inc incState

	// Probe state (tracked when opt.Probe or opt.Tracer is attached).
	probing bool
	// tracing mirrors opt.Tracer != nil for cheap per-epoch checks.
	tracing   bool
	btlLink   int32   // tightest bottleneck link of the last waterfill
	btlShare  float64 // its per-flow fair share
	dirtySize int     // dirty seed links consumed by the last waterfill
	affSize   int     // flows re-waterfilled by the last waterfill
	fillSize  int     // links re-waterfilled by the last waterfill

	// Engine counters (tracked only when opt.Metrics is attached).
	stats *engineStats

	// Intra-run parallelism (see parallel.go). pool is nil when the
	// effective worker count is 1; batching queues membership changes
	// for sharded replay instead of applying them in activate and
	// deactivate.
	pool     *par.Pool
	workers  int
	batching bool
	memOps   []memOp
	parTmin  []float64 // per-shard earliest-completion scratch
	parDone  [][]int32 // per-shard completion buffers

	traceErr error // first Trace write failure; surfaced by run

	// Adaptive routing state.
	mrouter      topo.MultiRouter
	numChoices   int
	activeOnLink []int32 // persistent per-link active-flow counts
	routeScratch []int32

	// Degraded-mode state (see fault.go); all nil/zero on pristine runs.
	ft           FaultTopology // topology reporting disconnection, or nil
	rr           Rerouter      // topology rerouting around dead links, or nil
	lost         []bool        // flows with no surviving route at prepare time
	linkDead     []bool        // per topology link: killed by a fault event
	deadCount    int
	nextEvent    int
	rerouted     int
	lostFlows    int
	lostBytes    float64
	victims      []int32 // scratch: active flows hit by a fault event
	faultScratch []int32 // scratch: reroute buffer

	routeArena arena // backing storage for all route slices
}

// arena hands out int32 sub-slices from large chunks, so building one
// route per flow does not cost one allocation per flow. Chunks are never
// reallocated, so previously returned slices stay valid.
type arena struct {
	chunk []int32
}

func (a *arena) alloc(n int) []int32 {
	if cap(a.chunk)-len(a.chunk) < n {
		size := 1 << 16
		if n > size {
			size = n
		}
		a.chunk = make([]int32, 0, size)
	}
	off := len(a.chunk)
	a.chunk = a.chunk[:off+n]
	// Full-slice so appends on the returned route cannot clobber the
	// arena's next allocation.
	return a.chunk[off : off+n : off+n]
}

// Simulate runs the workload on the topology and returns the result.
func Simulate(t topo.Topology, spec *Spec, opt Options) (*Result, error) {
	return SimulateContext(context.Background(), t, spec, opt)
}

// SimulateContext runs the workload on the topology under a context.
// Cancellation is cooperative: the engine checks the context at every
// epoch boundary (rate recomputations and route preparation batches) and
// returns an error wrapping ctx.Err(), so a canceled or deadline-expired
// simulation stops within one epoch instead of running to completion. A
// background (never-canceled) context costs a single nil check per epoch.
func SimulateContext(ctx context.Context, t topo.Topology, spec *Spec, opt Options) (*Result, error) {
	if opt.LinkBandwidth == 0 {
		opt.LinkBandwidth = DefaultBandwidth
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &sim{t: t, opt: opt, cap: opt.LinkBandwidth, flows: spec.Flows,
		probing: opt.Probe != nil || opt.Tracer != nil,
		tracing: opt.Tracer != nil,
		ctx:     ctx, ctxDone: ctx.Done()}
	s.workers = opt.Workers
	if s.workers == 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.workers > 1 {
		s.pool = par.NewPool(s.workers)
		defer s.pool.Close()
	}
	sp := opt.Tracer.Begin("flow.prepare", "phase")
	if err := s.prepare(spec); err != nil {
		return nil, err
	}
	sp.EndArgs(map[string]any{"flows": len(spec.Flows), "links": s.numLinks})
	sp = opt.Tracer.Begin("flow.run", "phase")
	res, err := s.run()
	if err != nil {
		return nil, err
	}
	sp.EndArgs(map[string]any{"epochs": res.Epochs})
	opt.Tracer.SimSpan("flow.simulate", "phase", 0, res.Makespan, map[string]any{
		"flows":  len(spec.Flows),
		"epochs": res.Epochs,
	})
	return res, nil
}

// canceled reports whether the run's context has been canceled. It is
// called at epoch boundaries only, never inside the waterfill hot path,
// and compiles down to a nil check when no cancelable context is attached.
func (s *sim) canceled() bool {
	if s.ctxDone == nil {
		return false
	}
	select {
	case <-s.ctxDone:
		return true
	default:
		return false
	}
}

func (s *sim) injectionLink(ep int32) int32 { return int32(s.numTopoLinks) + ep }
func (s *sim) ejectionLink(ep int32) int32 {
	return int32(s.numTopoLinks+s.numEndpoints) + ep
}

func (s *sim) prepare(spec *Spec) error {
	s.numEndpoints = s.t.NumEndpoints()
	s.numTopoLinks = s.t.NumLinks()
	s.numLinks = s.numTopoLinks
	if !s.opt.DisablePorts {
		s.numLinks += 2 * s.numEndpoints
	}
	f := len(spec.Flows)

	s.indeg = make([]int32, f)
	childCount := make([]int32, f)
	for i := range spec.Flows {
		fl := &spec.Flows[i]
		if fl.Src < 0 || int(fl.Src) >= s.numEndpoints || fl.Dst < 0 || int(fl.Dst) >= s.numEndpoints {
			return fmt.Errorf("flow %d: endpoint out of range (%d -> %d)", i, fl.Src, fl.Dst)
		}
		if fl.Bytes < 0 || math.IsNaN(fl.Bytes) || math.IsInf(fl.Bytes, 0) {
			return fmt.Errorf("flow %d: invalid size %g", i, fl.Bytes)
		}
		if fl.Start < 0 || math.IsNaN(fl.Start) || math.IsInf(fl.Start, 0) {
			return fmt.Errorf("flow %d: invalid start time %g", i, fl.Start)
		}
		for _, d := range fl.Deps {
			if d < 0 || int(d) >= f {
				return fmt.Errorf("flow %d: dependency %d out of range", i, d)
			}
			if d == int32(i) {
				return fmt.Errorf("flow %d depends on itself", i)
			}
			s.indeg[i]++
			childCount[d]++
		}
	}
	// CSR adjacency for dependents.
	s.childStart = make([]int32, f+1)
	for i := 0; i < f; i++ {
		s.childStart[i+1] = s.childStart[i] + childCount[i]
	}
	s.childList = make([]int32, s.childStart[f])
	fill := make([]int32, f)
	for i := range spec.Flows {
		for _, d := range spec.Flows[i].Deps {
			s.childList[s.childStart[d]+fill[d]] = int32(i)
			fill[d]++
		}
	}

	// Routes, with virtual ports prepended/appended. In adaptive mode the
	// choice is deferred to injection time, when link loads are known.
	s.routes = make([][]int32, f)
	withLatency := s.opt.LatencyBase > 0 || s.opt.LatencyPerHop > 0
	if withLatency {
		s.latency = make([]float64, f)
	}
	if s.opt.AdaptiveRouting {
		if mr, ok := s.t.(topo.MultiRouter); ok && mr.NumRouteChoices() > 1 {
			s.mrouter = mr
			s.numChoices = mr.NumRouteChoices()
			s.activeOnLink = make([]int32, s.numLinks)
			s.routeScratch = make([]int32, 0, 256)
		}
	}
	if err := s.prepareFaults(); err != nil {
		return err
	}
	switch {
	case s.mrouter != nil:
		// Adaptive mode: routes are chosen lazily by chooseRoute at
		// injection time, when link loads are known.
	case s.pool != nil && f >= parRouteMin:
		if err := s.prepareRoutesParallel(spec, withLatency); err != nil {
			return err
		}
	default:
		scratch := make([]int32, 0, 256)
		// Routing is deterministic per (src, dst), so repeated pairs — the
		// common case in multi-phase collectives — share one arena-backed
		// route slice. Sharing is safe: mid-run reroutes *reassign*
		// routes[i], they never mutate the slice in place.
		dedup := make(map[int64][]int32)
		for i := range spec.Flows {
			// Route construction dominates prepare on large systems; honour
			// cancellation between batches so a canceled cell never has to
			// finish routing hundreds of thousands of flows first.
			if i&0xfff == 0 && s.canceled() {
				return fmt.Errorf("flow: canceled while preparing routes (%d/%d flows): %w", i, f, s.ctx.Err())
			}
			fl := &spec.Flows[i]
			key := int64(fl.Src)<<32 | int64(uint32(fl.Dst))
			if r, ok := dedup[key]; ok {
				if withLatency {
					s.latency[i] = s.opt.LatencyBase + s.opt.LatencyPerHop*float64(s.routeHops(r))
				}
				s.routes[i] = r
				continue
			}
			if s.ft != nil {
				var ok bool
				scratch, ok = s.ft.RouteAppendOK(scratch[:0], int(fl.Src), int(fl.Dst))
				if !ok {
					// No surviving path: the flow is lost at injection time.
					s.markLost(i)
					continue
				}
			} else {
				scratch = s.t.RouteAppend(scratch[:0], int(fl.Src), int(fl.Dst))
			}
			if withLatency {
				s.latency[i] = s.opt.LatencyBase + s.opt.LatencyPerHop*float64(len(scratch))
			}
			r := s.materialiseRoute(fl, scratch)
			s.routes[i] = r
			dedup[key] = r
		}
	}

	s.remaining = make([]float64, f)
	s.rate = make([]float64, f)
	s.frozenAt = make([]int64, f)
	for i := range s.frozenAt {
		s.frozenAt[i] = -1
	}
	s.ends = make([]float64, f)
	if s.opt.Trace != nil {
		s.starts = make([]float64, f)
	}
	s.activePos = make([]int32, f)
	for i := range s.activePos {
		s.activePos[i] = -1
	}

	s.residual = make([]float64, s.numLinks)
	s.count = make([]int32, s.numLinks)
	s.stamp = make([]int64, s.numLinks)
	for i := range s.stamp {
		s.stamp[i] = -1
	}
	s.linkBytes = make([]float64, s.numLinks)
	if s.opt.ExactRecompute {
		s.linkFlows = make([][]int32, s.numLinks)
	} else {
		s.inc.init(s.numLinks, f)
	}
	if s.opt.Metrics != nil {
		s.stats = newEngineStats(s.opt.Metrics)
		s.stats.workers.Set(float64(s.workers))
	}
	// Batch membership maintenance for sharded replay; the incremental
	// state is only consulted at fill time, so joins and leaves can be
	// queued until the next flushMembership (fills and fault events).
	s.batching = s.pool != nil && !s.opt.ExactRecompute
	return nil
}

// routeHops recovers the network hop count of a materialised route (the
// latency model counts fabric hops, not the virtual port links).
func (s *sim) routeHops(r []int32) int {
	if s.opt.DisablePorts {
		return len(r)
	}
	return len(r) - 2
}

// materialiseRoute copies a network path into arena storage, wrapping it
// in the virtual injection/ejection port links unless ports are disabled.
func (s *sim) materialiseRoute(fl *Flow, path []int32) []int32 {
	return s.materialiseRouteIn(&s.routeArena, fl, path)
}

// materialiseRouteIn is materialiseRoute into an explicit arena, so the
// sharded route construction can give each worker its own.
func (s *sim) materialiseRouteIn(a *arena, fl *Flow, path []int32) []int32 {
	if s.opt.DisablePorts {
		r := a.alloc(len(path))
		copy(r, path)
		return r
	}
	r := a.alloc(len(path) + 2)
	r[0] = s.injectionLink(fl.Src)
	copy(r[1:], path)
	r[len(r)-1] = s.ejectionLink(fl.Dst)
	return r
}

// activate inserts a flow into the active set and marks the allocation
// stale: the new flow has no rate yet.
func (s *sim) activate(id int32, now float64) {
	s.activePos[id] = int32(len(s.active))
	s.active = append(s.active, id)
	s.remaining[id] = s.flows[id].Bytes
	s.dirty = true
	if s.starts != nil {
		s.starts[id] = now
	}
	if !s.opt.ExactRecompute {
		if s.batching {
			s.queueMembership(id, true)
		} else {
			s.inc.join(s, id)
		}
	}
	if s.activeOnLink != nil {
		for _, l := range s.routes[id] {
			s.activeOnLink[l]++
		}
	}
}

// deactivate removes a flow from the active set with swap-remove.
func (s *sim) deactivate(id int32) {
	pos := s.activePos[id]
	last := int32(len(s.active) - 1)
	moved := s.active[last]
	s.active[pos] = moved
	s.activePos[moved] = pos
	s.active = s.active[:last]
	s.activePos[id] = -1
	if !s.opt.ExactRecompute {
		if s.batching {
			s.queueMembership(id, false)
		} else {
			s.inc.leave(s, id)
		}
	}
	if s.activeOnLink != nil {
		for _, l := range s.routes[id] {
			s.activeOnLink[l]--
		}
	}
}

// waterfill assigns max-min fair rates to all active flows using
// progressive filling with a lazy min-heap of link fair shares.
func (s *sim) waterfill() {
	s.epoch++
	s.touched = s.touched[:0]
	for _, f := range s.active {
		for _, l := range s.routes[f] {
			if s.stamp[l] != s.epoch {
				s.stamp[l] = s.epoch
				s.residual[l] = s.cap
				s.count[l] = 0
				s.linkFlows[l] = s.linkFlows[l][:0]
				s.touched = append(s.touched, l)
			}
			s.count[l]++
			s.linkFlows[l] = append(s.linkFlows[l], f)
		}
	}
	s.heap.reset()
	for _, l := range s.touched {
		s.heap.share = append(s.heap.share, s.residual[l]/float64(s.count[l]))
		s.heap.link = append(s.heap.link, l)
	}
	s.heap.init()

	frozen := 0
	target := len(s.active)
	if s.probing {
		s.btlLink, s.btlShare = -1, 0
		s.dirtySize, s.affSize, s.fillSize = 0, target, len(s.touched)
	}
	if s.stats != nil {
		s.stats.epochs.Inc()
		s.stats.fullFills.Inc()
		s.stats.affected.Add(int64(target))
		s.stats.filledLinks.Add(int64(len(s.touched)))
	}
	for frozen < target && len(s.heap.link) > 0 {
		share, l := s.heap.pop()
		if s.count[l] == 0 {
			continue
		}
		cur := s.residual[l] / float64(s.count[l])
		if cur > share*(1+1e-12) {
			// Stale entry: the link gained headroom when other flows froze.
			s.heap.push(cur, l)
			continue
		}
		if s.probing && s.btlLink < 0 {
			// Progressive filling freezes bottlenecks in increasing share
			// order, so the first one is the tightest of this epoch.
			s.btlLink, s.btlShare = l, cur
		}
		// l is a bottleneck: freeze every unfrozen flow crossing it.
		for _, f := range s.linkFlows[l] {
			if s.frozenAt[f] == s.epoch {
				continue
			}
			s.frozenAt[f] = s.epoch
			s.rate[f] = cur
			frozen++
			for _, l2 := range s.routes[f] {
				s.residual[l2] -= cur
				if s.residual[l2] < 0 {
					s.residual[l2] = 0
				}
				s.count[l2]--
			}
		}
	}
}

// release decrements the dependency count of id's children, activating the
// ones that become ready. Zero-byte flows complete immediately and cascade.
func (s *sim) release(id int32, now float64) {
	for i := s.childStart[id]; i < s.childStart[id+1]; i++ {
		c := s.childList[i]
		s.indeg[c]--
		if s.indeg[c] == 0 {
			s.inject(c, now)
		}
	}
}

// chooseRoute materialises the least-loaded candidate route for a flow in
// adaptive mode. It is a no-op when the route is already set.
func (s *sim) chooseRoute(id int32) {
	if s.mrouter == nil || s.routes[id] != nil {
		return
	}
	fl := &s.flows[id]
	if fl.Src == fl.Dst && s.opt.DisablePorts {
		s.routes[id] = []int32{}
		return
	}
	bestScore := int32(1<<31 - 1)
	var best []int32
	for c := 0; c < s.numChoices; c++ {
		s.routeScratch = s.mrouter.RouteChoiceAppend(s.routeScratch[:0], int(fl.Src), int(fl.Dst), c)
		score := int32(0)
		for _, l := range s.routeScratch {
			if s.activeOnLink[l] > score {
				score = s.activeOnLink[l]
			}
		}
		if score < bestScore {
			bestScore = score
			best = append(best[:0], s.routeScratch...)
		}
	}
	if s.latency != nil {
		s.latency[id] = s.opt.LatencyBase + s.opt.LatencyPerHop*float64(len(best))
	}
	extra := 0
	if !s.opt.DisablePorts {
		extra = 2
	}
	r := make([]int32, 0, len(best)+extra)
	if !s.opt.DisablePorts {
		r = append(r, s.injectionLink(fl.Src))
	}
	r = append(r, best...)
	if !s.opt.DisablePorts {
		r = append(r, s.ejectionLink(fl.Dst))
	}
	s.routes[id] = r
}

func (s *sim) inject(id int32, now float64) {
	s.indeg[id] = -1 // guard against double injection via release cascades
	if s.lost != nil && s.lost[id] {
		// Disconnected at prepare time: the data never arrives, but the
		// dependents are released so the rest of the workload completes.
		s.loseFlow(id, now, s.flows[id].Bytes, false)
		return
	}
	if s.ft != nil && s.mrouter != nil && !s.ft.Connected(int(s.flows[id].Src), int(s.flows[id].Dst)) {
		// Adaptive mode defers routing to injection; the disconnection
		// check has to happen here too.
		s.loseFlow(id, now, s.flows[id].Bytes, false)
		return
	}
	s.chooseRoute(id)
	if s.deadCount > 0 && s.routeCrossesDead(id) {
		// A fault event killed part of this flow's route before it was
		// injected; detour or declare it lost.
		if !s.rerouteFlow(id) {
			s.loseFlow(id, now, s.flows[id].Bytes, false)
			return
		}
	}
	// Dependencies are satisfied, but the flow may still be gated by its
	// release time; it holds in the pending heap until then.
	rel := now
	if fl := &s.flows[id]; fl.Start > now {
		rel = fl.Start
	}
	if s.flows[id].Bytes <= 0 || len(s.routes[id]) == 0 {
		// Nothing to transmit, or a self-flow with ports disabled: the
		// transfer never occupies a shared resource and completes the
		// instant it is released.
		if rel > now {
			heap.Push(&s.pending, pendEntry{at: rel, id: id})
			return
		}
		s.ends[id] = now
		s.done++
		if s.starts != nil {
			s.starts[id] = now
		}
		s.trace(id, now)
		s.release(id, now)
		return
	}
	at := rel
	if s.latency != nil {
		at += s.latency[id]
	}
	if at > now {
		heap.Push(&s.pending, pendEntry{at: at, id: id})
		return
	}
	s.activate(id, now)
}

// trace writes one completion record when tracing is enabled. The first
// write failure is remembered (and stops further writes); run surfaces it
// so a full disk cannot masquerade as a successful, complete trace.
func (s *sim) trace(id int32, end float64) {
	if s.opt.Trace == nil || s.traceErr != nil {
		return
	}
	start := end
	if s.starts != nil {
		start = s.starts[id]
	}
	fl := &s.flows[id]
	if _, err := fmt.Fprintf(s.opt.Trace, "%d,%d,%d,%g,%.9g,%.9g\n", id, fl.Src, fl.Dst, fl.Bytes, start, end); err != nil {
		s.traceErr = err
	}
}

// activateDue moves every pending flow whose latency has elapsed by `now`
// into the active set. Flows whose route died while they waited out
// their latency are detoured (or lost) first.
func (s *sim) activateDue(now float64) {
	for s.pending.Len() > 0 && s.pending.at[0] <= now*(1+1e-15) {
		e := heap.Pop(&s.pending).(pendEntry)
		if s.flows[e.id].Bytes <= 0 || len(s.routes[e.id]) == 0 {
			// A release-gated degenerate flow: it occupies no link, so it
			// completes the moment its start time arrives. Its release may
			// cascade into fresh injections (and pending-heap pushes),
			// which this loop then drains in the same pass.
			s.ends[e.id] = now
			s.done++
			if s.starts != nil {
				s.starts[e.id] = now
			}
			s.trace(e.id, now)
			s.release(e.id, now)
			continue
		}
		if s.deadCount > 0 && s.routeCrossesDead(e.id) {
			if !s.rerouteFlow(e.id) {
				s.loseFlow(e.id, now, s.flows[e.id].Bytes, false)
				continue
			}
		}
		s.activate(e.id, now)
	}
}

func (s *sim) run() (*Result, error) {
	f := len(s.flows)
	now := 0.0
	// Fault events scheduled at t=0 strike before the first injection, so
	// the initial wave already routes around the dead links.
	s.applyDueFaults(now)
	for i := 0; i < f; i++ {
		if s.indeg[i] == 0 {
			s.inject(int32(i), now)
		}
	}

	res := &Result{}
	var completed []int32
	needRefresh := true
	completedSince := 0
	for len(s.active) > 0 || s.pending.Len() > 0 {
		if s.canceled() {
			return nil, fmt.Errorf("flow: canceled at t=%g after %d epochs: %w", now, res.Epochs, s.ctx.Err())
		}
		if len(s.active) == 0 {
			// Nothing transmitting: jump to the next latency expiry (or
			// the next fault event, whichever strikes first — a pending
			// flow's route may need rerouting before it activates).
			at := s.pending.at[0]
			if ft := s.nextFaultTime(); ft < at {
				at = ft
			}
			if at > now {
				now = at
			}
			s.applyDueFaults(now)
			s.activateDue(now)
			needRefresh = true
			continue
		}
		if needRefresh || float64(completedSince) >= s.opt.RefreshFraction*float64(len(s.active)) {
			var wallStart time.Time
			if s.probing {
				wallStart = time.Now()
			}
			if s.opt.ExactRecompute {
				s.waterfill()
			} else {
				s.waterfillIncremental()
			}
			res.Epochs++
			needRefresh = false
			completedSince = 0
			if s.probing {
				if s.opt.Probe != nil {
					s.opt.Probe.OnEpoch(obs.EpochSnapshot{
						Epoch:           res.Epochs,
						SimTime:         now,
						ActiveFlows:     len(s.active),
						BottleneckLink:  s.btlLink,
						BottleneckShare: s.btlShare,
						DirtyLinks:      s.dirtySize,
						AffectedFlows:   s.affSize,
						FilledLinks:     s.fillSize,
						WallTime:        time.Since(wallStart),
					})
				}
				if s.tracing {
					tr := s.opt.Tracer
					tr.WallSpanSince("flow.waterfill", "waterfill", wallStart, 0,
						map[string]any{"epoch": res.Epochs})
					tr.SimCounter("flow.active", now, map[string]float64{
						"flows": float64(len(s.active)),
					})
					tr.SimCounter("flow.waterfill", now, map[string]float64{
						"affected_flows": float64(s.affSize),
						"dirty_links":    float64(s.dirtySize),
						"filled_links":   float64(s.fillSize),
					})
					tr.SimInstant("flow.bottleneck", "epoch", now, map[string]any{
						"epoch": res.Epochs,
						"link":  s.btlLink,
						"share": s.btlShare,
					})
				}
			}
		}

		// Earliest completion among active flows.
		var tmin float64
		if s.pool != nil && len(s.active) >= parScanMin {
			tmin = s.minFinishParallel()
		} else {
			tmin = math.Inf(1)
			for _, id := range s.active {
				if fin := s.remaining[id] / s.rate[id]; fin < tmin {
					tmin = fin
				}
			}
		}
		if math.IsInf(tmin, 1) || tmin < 0 {
			return nil, fmt.Errorf("flow: stalled simulation (no progress at t=%g with %d active flows)", now, len(s.active))
		}
		dt := tmin * (1 + s.opt.RelEpsilon)
		// Guard against dt == 0 underflow on zero-remaining corner cases.
		if dt <= 0 {
			dt = tmin
		}
		// Never advance past the next latency expiry: a newly active flow
		// changes the fair shares.
		if s.pending.Len() > 0 {
			if gap := s.pending.at[0] - now; gap < dt {
				dt = gap
				if dt < 0 {
					dt = 0
				}
			}
		}
		// Nor past the next fault event: rates change when links die.
		if ft := s.nextFaultTime(); !math.IsInf(ft, 1) {
			if gap := ft - now; gap < dt {
				dt = gap
				if dt < 0 {
					dt = 0
				}
			}
		}
		now += dt
		completed = completed[:0]
		if dt > 0 {
			if s.pool != nil && len(s.active) >= parScanMin {
				completed = s.advanceParallel(dt, completed)
			} else {
				for _, id := range s.active {
					adv := s.rate[id] * dt
					if s.remaining[id] <= adv*(1+1e-12) {
						completed = append(completed, id)
					} else {
						s.remaining[id] -= adv
					}
				}
			}
		}
		for _, id := range completed {
			s.deactivate(id)
			s.ends[id] = now
			s.done++
			hops := len(s.routes[id])
			if !s.opt.DisablePorts {
				hops -= 2
			}
			res.HopBytes += float64(hops) * s.flows[id].Bytes
			for _, l := range s.routes[id] {
				s.linkBytes[l] += s.flows[id].Bytes
			}
			s.trace(id, now)
			s.release(id, now)
		}
		completedSince += len(completed)
		s.applyDueFaults(now)
		s.activateDue(now)
		if s.dirty {
			needRefresh = true // newly activated flows have no rate yet
			s.dirty = false
		}
	}
	if s.done != f {
		return nil, fmt.Errorf("flow: %d of %d flows never ran — dependency cycle in workload", f-s.done, f)
	}
	if s.traceErr != nil {
		return nil, fmt.Errorf("flow: writing trace: %w", s.traceErr)
	}

	res.Makespan = now
	res.BytesDelivered = 0
	for i := range s.flows {
		res.BytesDelivered += s.flows[i].Bytes
	}
	if s.lostFlows > 0 {
		// Guarded so pristine runs keep bit-identical arithmetic.
		res.BytesDelivered -= s.lostBytes
		res.DisconnectedFlows = s.lostFlows
		res.LostBytes = s.lostBytes
	}
	res.ReroutedFlows = s.rerouted
	if s.opt.RecordFlowEnds {
		res.FlowEnds = s.ends
	}
	if now > 0 {
		denom := s.cap * now
		sum, nonzero := 0.0, 0
		for l := 0; l < s.numTopoLinks; l++ {
			u := s.linkBytes[l] / denom
			if u > res.MaxLinkUtilization {
				res.MaxLinkUtilization = u
			}
			if s.linkBytes[l] > 0 {
				sum += u
				nonzero++
			}
		}
		if nonzero > 0 {
			res.MeanLinkUtilization = sum / float64(nonzero)
		}
		for l := s.numTopoLinks; l < s.numLinks; l++ {
			if u := s.linkBytes[l] / denom; u > res.MaxPortUtilization {
				res.MaxPortUtilization = u
			}
		}
	}
	if s.opt.HotspotK > 0 {
		res.Hotspots = s.computeHotspots(res.Makespan)
	}
	return res, nil
}

// Flight-recorder tests: the hot-spot attribution and the trace
// recorder's sim-domain surface must be byte-deterministic across
// repeated runs and across Workers settings, and the per-tier breakdown
// must be internally consistent with the aggregate result metrics.
package flow_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"mtier/internal/core"
	"mtier/internal/fault"
	"mtier/internal/flow"
	"mtier/internal/topo"
	"mtier/internal/trace"
	"mtier/internal/workload"
)

func runHotspot(t *testing.T, kind core.TopoKind, tt, u, workers int) *core.RunResult {
	t.Helper()
	res, err := core.Run(core.Config{
		Kind:      kind,
		Endpoints: 64,
		T:         tt,
		U:         u,
		Workload:  workload.AllToAll,
		Params:    workload.Params{Seed: 7},
		Sim:       flow.Options{HotspotK: 8, Workers: workers},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHotspotReportNest(t *testing.T) {
	res := runHotspot(t, core.NestGHC, 2, 4, 1)
	hs := res.Result.Hotspots
	if hs == nil {
		t.Fatal("HotspotK set but no report produced")
	}
	if hs.K != 8 {
		t.Fatalf("K = %d, want 8", hs.K)
	}
	if len(hs.TopLinks) == 0 || len(hs.TopLinks) > 8 {
		t.Fatalf("top links = %d, want 1..8", len(hs.TopLinks))
	}
	// The hottest link's utilisation is, by definition, the run's max.
	if math.Float64bits(hs.TopLinks[0].Utilization) != math.Float64bits(res.Result.MaxLinkUtilization) {
		t.Fatalf("hottest link utilisation %g != max link utilisation %g",
			hs.TopLinks[0].Utilization, res.Result.MaxLinkUtilization)
	}
	for i := 1; i < len(hs.TopLinks); i++ {
		a, b := hs.TopLinks[i-1], hs.TopLinks[i]
		if a.Bytes < b.Bytes || (a.Bytes == b.Bytes && a.Link >= b.Link) {
			t.Fatalf("top links out of order at %d: %+v then %+v", i, a, b)
		}
	}
	// A nest topology attributes three tiers, bottom-up.
	if len(hs.Tiers) != 3 {
		t.Fatalf("tiers = %d, want 3", len(hs.Tiers))
	}
	wantNames := []string{"subtorus", "uplink", "fabric"}
	totalLinks := 0
	for i, tier := range hs.Tiers {
		if tier.Tier != i || tier.Name != wantNames[i] {
			t.Fatalf("tier %d = %q, want %q", i, tier.Name, wantNames[i])
		}
		totalLinks += tier.Links
		sum := 0
		for _, c := range tier.Histogram {
			sum += c
		}
		if sum != tier.ActiveLinks {
			t.Fatalf("tier %s histogram sums to %d, want active links %d", tier.Name, sum, tier.ActiveLinks)
		}
		if tier.MaxUtilization > res.Result.MaxLinkUtilization {
			t.Fatalf("tier %s max utilisation %g exceeds run max %g",
				tier.Name, tier.MaxUtilization, res.Result.MaxLinkUtilization)
		}
	}
	if totalLinks != res.Links {
		t.Fatalf("tier link counts sum to %d, want %d", totalLinks, res.Links)
	}
	// All-to-all crosses the fabric, so every tier must carry traffic.
	for _, tier := range hs.Tiers {
		if tier.ActiveLinks == 0 || tier.FlowsTraversing == 0 {
			t.Fatalf("tier %s saw no traffic: %+v", tier.Name, tier)
		}
	}
}

func TestHotspotFlatTopologySingleTier(t *testing.T) {
	res := runHotspot(t, core.Torus3D, 0, 0, 1)
	hs := res.Result.Hotspots
	if hs == nil || len(hs.Tiers) != 1 {
		t.Fatalf("flat topology should report one tier, got %+v", hs)
	}
	if hs.Tiers[0].Name != "network" {
		t.Fatalf("flat tier name = %q, want network", hs.Tiers[0].Name)
	}
}

func TestHotspotDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		res := runHotspot(t, core.NestTree, 2, 4, workers)
		b, err := json.Marshal(res.Result.Hotspots)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := marshal(1)
	for _, w := range parWorkerCounts {
		if got := marshal(w); !bytes.Equal(got, want) {
			t.Fatalf("hotspot report diverged at workers=%d:\n%s\n%s", w, got, want)
		}
	}
	// Repeated run, same workers: byte identity again.
	if got := marshal(1); !bytes.Equal(got, want) {
		t.Fatalf("hotspot report not reproducible:\n%s\n%s", got, want)
	}
}

// traceSurface runs one cell with a flight recorder attached and returns
// the deterministic (sim-domain) JSON surface.
func traceSurface(t *testing.T, workers int) []byte {
	t.Helper()
	rec := trace.NewRecorder()
	_, err := core.Run(core.Config{
		Kind:      core.NestGHC,
		Endpoints: 64,
		T:         2,
		U:         4,
		Workload:  workload.AllReduce,
		Params:    workload.Params{Seed: 3},
		Sim:       flow.Options{Workers: workers, Tracer: rec},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("tracer attached but no events recorded")
	}
	b, err := rec.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	want := traceSurface(t, 1)
	if !bytes.Contains(want, []byte("flow.simulate")) ||
		!bytes.Contains(want, []byte("flow.active")) ||
		!bytes.Contains(want, []byte("flow.bottleneck")) {
		t.Fatalf("deterministic surface missing sim-domain events: %.400s", want)
	}
	if bytes.Contains(want, []byte("flow.prepare")) || bytes.Contains(want, []byte("flow.routes.shard")) {
		t.Fatalf("wall-clock events leaked into deterministic surface: %.400s", want)
	}
	for _, w := range parWorkerCounts {
		if got := traceSurface(t, w); !bytes.Equal(got, want) {
			t.Fatalf("trace surface diverged at workers=%d", w)
		}
	}
	if got := traceSurface(t, 1); !bytes.Equal(got, want) {
		t.Fatal("trace surface not reproducible across repeated runs")
	}
}

func TestTraceFaultEvents(t *testing.T) {
	base, err := core.Build(core.TopoSpec{Kind: core.Torus3D, Endpoints: 27})
	if err != nil {
		t.Fatal(err)
	}
	set, err := fault.Generate(base, fault.Spec{Model: fault.Random})
	if err != nil {
		t.Fatal(err)
	}
	d := fault.Wrap(base, set, nil)

	spec := &flow.Spec{}
	for i := 0; i < base.NumEndpoints(); i++ {
		spec.Add(i, (i+5)%base.NumEndpoints(), 1e7)
	}
	route := topo.Route(d, 0, 5)
	rec := trace.NewRecorder()
	res, err := flow.Simulate(d, spec, flow.Options{
		Tracer:      rec,
		FaultEvents: []flow.FaultEvent{{Time: 1e-3, Links: []int32{route[0]}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReroutedFlows == 0 && res.DisconnectedFlows == 0 {
		t.Fatalf("fault event had no effect: %+v", res)
	}
	b, err := rec.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"flow.fault"`)) {
		t.Fatalf("no fault instant in trace: %.400s", b)
	}
	if !bytes.Contains(b, []byte(`"killed_links"`)) {
		t.Fatalf("fault instant missing args: %.400s", b)
	}
}

func TestHotspotInRunRecord(t *testing.T) {
	res := runHotspot(t, core.NestGHC, 2, 4, 1)
	fp1, err := res.Record().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fp1, []byte(`"hotspots"`)) || !bytes.Contains(fp1, []byte(`"hotspot_k":8`)) {
		t.Fatalf("run record missing hotspot section: %.400s", fp1)
	}
	if !bytes.Contains(fp1, []byte(`"mtier/run-record/v3"`)) {
		t.Fatalf("record schema not bumped: %.200s", fp1)
	}
	res2 := runHotspot(t, core.NestGHC, 2, 4, 2)
	fp2, err := res2.Record().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fp1, fp2) {
		t.Fatal("record fingerprint with hotspots diverged across workers")
	}
}

func TestHotspotKValidation(t *testing.T) {
	opt := flow.Options{HotspotK: -1}
	if err := opt.Validate(); err == nil {
		t.Fatal("negative HotspotK accepted")
	}
}

package place

import (
	"strings"
	"testing"

	"mtier/internal/flow"
)

func TestLinear(t *testing.T) {
	m, err := Mapping(Linear, 8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range m {
		if int(ep) != i {
			t.Fatalf("linear mapping[%d] = %d", i, ep)
		}
	}
}

func TestStrided(t *testing.T) {
	m, err := Mapping(Strided, 8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range m {
		if int(ep) != i*8 {
			t.Fatalf("strided mapping[%d] = %d, want %d", i, ep, i*8)
		}
	}
}

func TestRandomDistinctAndDeterministic(t *testing.T) {
	a, err := Mapping(Random, 32, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, ep := range a {
		if ep < 0 || ep >= 64 {
			t.Fatalf("endpoint out of range: %d", ep)
		}
		if seen[ep] {
			t.Fatalf("duplicate endpoint %d", ep)
		}
		seen[ep] = true
	}
	b, _ := Mapping(Random, 32, 64, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different mapping")
		}
	}
	c, _ := Mapping(Random, 32, 64, 8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical mapping")
	}
}

func TestMappingValidation(t *testing.T) {
	if _, err := Mapping(Linear, 0, 8, 0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := Mapping(Linear, 9, 8, 0); err == nil {
		t.Fatal("too many tasks accepted")
	}
	if _, err := Mapping(Policy("bogus"), 4, 8, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestApply(t *testing.T) {
	spec := &flow.Spec{}
	a := spec.Add(0, 1, 100)
	spec.Add(1, 2, 200, a)
	m := []int32{10, 20, 30}
	out, err := Apply(spec, m)
	if err != nil {
		t.Fatal(err)
	}
	if out.Flows[0].Src != 10 || out.Flows[0].Dst != 20 {
		t.Fatalf("flow 0 mapped to %d->%d", out.Flows[0].Src, out.Flows[0].Dst)
	}
	if out.Flows[1].Src != 20 || out.Flows[1].Dst != 30 {
		t.Fatalf("flow 1 mapped to %d->%d", out.Flows[1].Src, out.Flows[1].Dst)
	}
	if len(out.Flows[1].Deps) != 1 || out.Flows[1].Deps[0] != a {
		t.Fatal("deps lost in mapping")
	}
	// Original spec untouched.
	if spec.Flows[0].Src != 0 {
		t.Fatal("Apply mutated input")
	}
}

func TestApplyRejectsOutOfRange(t *testing.T) {
	spec := &flow.Spec{}
	spec.Add(0, 5, 100)
	if _, err := Apply(spec, []int32{1, 2}); err == nil {
		t.Fatal("out-of-mapping task accepted")
	}
}

func TestPoliciesList(t *testing.T) {
	if len(Policies()) != 3 {
		t.Fatal("expected 3 policies")
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy("Strided")
	if err != nil || p != Strided {
		t.Fatalf("ParsePolicy(Strided) = %v, %v", p, err)
	}
	// Empty means auto-select and must pass through.
	if p, err := ParsePolicy(""); err != nil || p != "" {
		t.Fatalf("ParsePolicy(\"\") = %q, %v", p, err)
	}
	if _, err := ParsePolicy("diagonal"); err == nil {
		t.Fatal("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "linear") {
		t.Fatalf("error %q does not list valid policies", err)
	}
}

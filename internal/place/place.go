// Package place maps application tasks onto machine endpoints — the
// "mapping" stage of INRFlow's scheduling pipeline. Workload generators
// emit flows between task ids; Apply rewrites them onto endpoints.
//
// Because the hybrid topologies number QFDBs subtorus-major, the Linear
// policy is also the locality-preserving "blocked" placement (consecutive
// tasks fill one subtorus before spilling into the next), Strided spreads
// consecutive tasks as far apart as possible, and Random models a
// fragmented machine.
package place

import (
	"fmt"
	"strings"

	"mtier/internal/flow"
	"mtier/internal/xrand"
)

// Policy names a task-to-endpoint mapping strategy.
type Policy string

const (
	// Linear assigns task i to endpoint i (blocked, locality-preserving).
	Linear Policy = "linear"
	// Strided assigns task i to endpoint i*(endpoints/tasks), spreading
	// tasks uniformly over the machine.
	Strided Policy = "strided"
	// Random assigns tasks to uniformly random distinct endpoints.
	Random Policy = "random"
)

// Policies lists the supported mapping strategies.
func Policies() []Policy { return []Policy{Linear, Strided, Random} }

// ParsePolicy validates a user-supplied placement name. The empty string
// is returned unchanged: it means "choose automatically" at the core
// layer. Unknown names fail with the list of valid policies.
func ParsePolicy(s string) (Policy, error) {
	p := Policy(strings.ToLower(strings.TrimSpace(s)))
	if p == "" {
		return "", nil
	}
	for _, valid := range Policies() {
		if p == valid {
			return p, nil
		}
	}
	names := make([]string, len(Policies()))
	for i, valid := range Policies() {
		names[i] = string(valid)
	}
	return "", fmt.Errorf("place: unknown policy %q (valid: %s)", s, strings.Join(names, ", "))
}

// Mapping builds a task→endpoint map for the given policy. tasks must not
// exceed endpoints; every task gets a distinct endpoint.
func Mapping(p Policy, tasks, endpoints int, seed int64) ([]int32, error) {
	if tasks < 1 {
		return nil, fmt.Errorf("place: need at least one task, got %d", tasks)
	}
	if tasks > endpoints {
		return nil, fmt.Errorf("place: %d tasks exceed %d endpoints", tasks, endpoints)
	}
	m := make([]int32, tasks)
	switch p {
	case Linear:
		for i := range m {
			m[i] = int32(i)
		}
	case Strided:
		stride := endpoints / tasks
		for i := range m {
			m[i] = int32(i * stride)
		}
	case Random:
		perm := xrand.New(seed).Split("place").Perm(endpoints)
		for i := range m {
			m[i] = int32(perm[i])
		}
	default:
		return nil, fmt.Errorf("place: unknown policy %q", p)
	}
	return m, nil
}

// Apply rewrites a task-indexed spec into an endpoint-indexed spec using
// the mapping. Dependency lists are shared with the input (they reference
// flow ids, which do not change).
func Apply(spec *flow.Spec, mapping []int32) (*flow.Spec, error) {
	out := &flow.Spec{Flows: make([]flow.Flow, len(spec.Flows))}
	for i, f := range spec.Flows {
		if int(f.Src) >= len(mapping) || int(f.Dst) >= len(mapping) || f.Src < 0 || f.Dst < 0 {
			return nil, fmt.Errorf("place: flow %d references task outside the mapping (%d -> %d)", i, f.Src, f.Dst)
		}
		out.Flows[i] = flow.Flow{
			Src:   mapping[f.Src],
			Dst:   mapping[f.Dst],
			Bytes: f.Bytes,
			Deps:  f.Deps,
		}
	}
	return out, nil
}

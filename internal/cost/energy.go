package cost

import (
	"fmt"

	"mtier/internal/flow"
)

// EnergyModel extends the cost model with the figures needed for the
// network-energy estimation the paper lists as future work: a static
// component (the network hardware idling for the duration of the run) and
// a dynamic component proportional to bytes moved per hop.
type EnergyModel struct {
	// StaticSwitchWatts is the idle power of one switch.
	StaticSwitchWatts float64
	// StaticPortWatts is the idle power of one active transceiver (two per
	// cable).
	StaticPortWatts float64
	// JoulesPerByteHop is the dynamic energy to move one byte across one
	// link (~10 pJ/bit-class SerDes plus buffering).
	JoulesPerByteHop float64
}

// DefaultEnergyModel returns figures in the range of 10 Gbps FPGA
// transceivers.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		StaticSwitchWatts: 15,
		StaticPortWatts:   0.5,
		JoulesPerByteHop:  1e-10, // 0.8 pJ/bit
	}
}

// Validate rejects negative parameters.
func (m EnergyModel) Validate() error {
	if m.StaticSwitchWatts < 0 || m.StaticPortWatts < 0 || m.JoulesPerByteHop < 0 {
		return fmt.Errorf("cost: negative energy parameters")
	}
	return nil
}

// EnergyEstimate is the energy bill of one simulated run.
type EnergyEstimate struct {
	// StaticJoules is idle network power × makespan.
	StaticJoules float64
	// DynamicJoules is bytes×hops × per-byte-hop energy.
	DynamicJoules float64
	// TotalJoules is the sum.
	TotalJoules float64
	// DynamicFraction is DynamicJoules / TotalJoules (0 when idle-free).
	DynamicFraction float64
}

// Energy estimates the network energy of a simulation result on a system
// with the given switch and directed-link counts.
func Energy(res *flow.Result, switches, directedLinks int, m EnergyModel) (EnergyEstimate, error) {
	if err := m.Validate(); err != nil {
		return EnergyEstimate{}, err
	}
	if res == nil || switches < 0 || directedLinks < 0 {
		return EnergyEstimate{}, fmt.Errorf("cost: invalid energy inputs")
	}
	staticW := float64(switches)*m.StaticSwitchWatts + float64(directedLinks)*m.StaticPortWatts
	e := EnergyEstimate{
		StaticJoules:  staticW * res.Makespan,
		DynamicJoules: res.HopBytes * m.JoulesPerByteHop,
	}
	e.TotalJoules = e.StaticJoules + e.DynamicJoules
	if e.TotalJoules > 0 {
		e.DynamicFraction = e.DynamicJoules / e.TotalJoules
	}
	return e, nil
}

package cost

import (
	"testing"

	"mtier/internal/topo/nest"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	m := DefaultModel()
	m.NodeCost = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero node cost accepted")
	}
	m = DefaultModel()
	m.SwitchCost = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative switch cost accepted")
	}
}

func TestOverheadsAreFewPercent(t *testing.T) {
	// Table 2's headline: hybrid upper tiers cost a few percent of the
	// system, power even less.
	for _, kind := range []nest.UpperKind{nest.UpperTree, nest.UpperGHC} {
		for _, u := range []int{1, 2, 4, 8} {
			n, err := nest.BuildCube(kind, 2, u, 32768)
			if err != nil {
				t.Fatal(err)
			}
			e, err := ForNest(n, DefaultModel())
			if err != nil {
				t.Fatal(err)
			}
			if e.CostOverheadPct <= 0 || e.CostOverheadPct > 15 {
				t.Errorf("%s u=%d: cost overhead %g%% out of band", kind, u, e.CostOverheadPct)
			}
			if e.PowerOverheadPct <= 0 || e.PowerOverheadPct >= e.CostOverheadPct {
				t.Errorf("%s u=%d: power overhead %g%% should be below cost %g%%", kind, u, e.PowerOverheadPct, e.CostOverheadPct)
			}
		}
	}
}

func TestOverheadDropsWithThinning(t *testing.T) {
	dense, err := nest.BuildCube(nest.UpperGHC, 2, 1, 32768)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := nest.BuildCube(nest.UpperGHC, 2, 8, 32768)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := ForNest(dense, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	es, err := ForNest(sparse, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if es.CostOverheadPct >= ed.CostOverheadPct {
		t.Errorf("u=8 cost %g%% should be below u=1 cost %g%%", es.CostOverheadPct, ed.CostOverheadPct)
	}
	if es.Switches >= ed.Switches {
		t.Errorf("u=8 switches %d should be below u=1 switches %d", es.Switches, ed.Switches)
	}
	if es.Uplinks*8 != ed.Uplinks {
		t.Errorf("uplink counts inconsistent: %d vs %d", es.Uplinks, ed.Uplinks)
	}
}

func TestSwitchCountIndependentOfT(t *testing.T) {
	// Table 2: switch counts depend on u, not on t.
	for _, u := range []int{1, 2, 4, 8} {
		var prev int
		for i, tt := range []int{2, 4, 8} {
			n, err := nest.BuildCube(nest.UpperTree, tt, u, 32768)
			if err != nil {
				t.Fatal(err)
			}
			e, err := ForNest(n, DefaultModel())
			if err != nil {
				t.Fatal(err)
			}
			if i > 0 && e.Switches != prev {
				t.Errorf("u=%d: switches depend on t (%d vs %d)", u, e.Switches, prev)
			}
			prev = e.Switches
		}
	}
}

func TestBadInputs(t *testing.T) {
	n, err := nest.BuildCube(nest.UpperTree, 2, 2, 512)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultModel()
	bad.NodePower = 0
	if _, err := ForNest(n, bad); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := ForFabric(n.Fabric(), 0, 10, DefaultModel()); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

// Package cost estimates the hardware, cost and power overheads of the
// upper-tier network — the model behind Table 2 of the paper. Overheads
// are expressed relative to the base system (the QFDBs with their
// hard-wired torus backplanes), which is what the paper reports: the extra
// switches are the only significant addition, and the table answers "how
// much more does the hybrid cost than the bare torus?".
package cost

import (
	"fmt"

	"mtier/internal/topo"
	"mtier/internal/topo/nest"
)

// Model holds per-component cost and power figures. The defaults are
// calibrated so the paper-scale fattree upper tier lands in the same few-
// percent band as Table 2 (~5% cost, ~2% power for u=1).
type Model struct {
	// NodeCost is the unit cost of one QFDB (arbitrary currency units).
	NodeCost float64
	// SwitchCost is the unit cost of one upper-tier switch.
	SwitchCost float64
	// CableCost is the unit cost of one external cable (uplinks and
	// switch-to-switch cables; backplane traces are free).
	CableCost float64
	// NodePower is the power draw of one QFDB in watts.
	NodePower float64
	// SwitchPower is the power draw of one switch in watts.
	SwitchPower float64
	// CablePower is the power draw of one active cable (transceivers).
	CablePower float64
}

// DefaultModel returns the calibrated model.
func DefaultModel() Model {
	return Model{
		NodeCost:    1200,
		SwitchCost:  750,
		CableCost:   4,
		NodePower:   60,
		SwitchPower: 15,
		CablePower:  0.05,
	}
}

// Validate rejects non-positive base-system figures.
func (m Model) Validate() error {
	if m.NodeCost <= 0 || m.NodePower <= 0 {
		return fmt.Errorf("cost: node cost/power must be positive")
	}
	if m.SwitchCost < 0 || m.CableCost < 0 || m.SwitchPower < 0 || m.CablePower < 0 {
		return fmt.Errorf("cost: negative component figures")
	}
	return nil
}

// Estimate is the hardware bill and overhead of one upper-tier design.
type Estimate struct {
	// Nodes is the QFDB population of the base system.
	Nodes int
	// Switches is the upper-tier switch count.
	Switches int
	// Uplinks is the number of node-to-fabric cables.
	Uplinks int
	// FabricCables is the number of switch-to-switch cables.
	FabricCables int
	// CostOverheadPct is the extra cost relative to the base system, in %.
	CostOverheadPct float64
	// PowerOverheadPct is the extra power relative to the base system, in %.
	PowerOverheadPct float64
}

// ForFabric estimates the overhead of attaching the given fabric (with the
// given number of uplinks in use) to a base system of nodes QFDBs.
func ForFabric(fab topo.Fabric, nodes, uplinks int, m Model) (Estimate, error) {
	if err := m.Validate(); err != nil {
		return Estimate{}, err
	}
	if nodes <= 0 || uplinks < 0 {
		return Estimate{}, fmt.Errorf("cost: invalid system size (nodes=%d, uplinks=%d)", nodes, uplinks)
	}
	e := Estimate{
		Nodes:        nodes,
		Switches:     fab.NumSwitches(),
		Uplinks:      uplinks,
		FabricCables: len(fab.SwitchCables()),
	}
	baseCost := float64(nodes) * m.NodeCost
	basePower := float64(nodes) * m.NodePower
	extraCost := float64(e.Switches)*m.SwitchCost + float64(e.Uplinks+e.FabricCables)*m.CableCost
	extraPower := float64(e.Switches)*m.SwitchPower + float64(e.Uplinks+e.FabricCables)*m.CablePower
	e.CostOverheadPct = 100 * extraCost / baseCost
	e.PowerOverheadPct = 100 * extraPower / basePower
	return e, nil
}

// ForNest estimates the overhead of a hybrid topology's upper tier.
func ForNest(n *nest.Nest, m Model) (Estimate, error) {
	return ForFabric(n.Fabric(), n.NumEndpoints(), n.NumUplinks(), m)
}

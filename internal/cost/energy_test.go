package cost

import (
	"testing"

	"mtier/internal/flow"
	"mtier/internal/grid"
	"mtier/internal/topo/torus"
)

func TestEnergyValidation(t *testing.T) {
	m := DefaultEnergyModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m.JoulesPerByteHop = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative energy accepted")
	}
	if _, err := Energy(nil, 1, 1, DefaultEnergyModel()); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := Energy(&flow.Result{}, -1, 0, DefaultEnergyModel()); err == nil {
		t.Fatal("negative switches accepted")
	}
}

func TestEnergyFromSimulation(t *testing.T) {
	tor, err := torus.New(grid.Shape{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	spec := &flow.Spec{}
	spec.Add(0, 2, 1e9) // 2 hops
	spec.Add(0, 1, 1e9) // 1 hop
	res, err := flow.Simulate(tor, spec, flow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HopBytes != 3e9 {
		t.Fatalf("HopBytes = %g, want 3e9", res.HopBytes)
	}
	e, err := Energy(res, 0, tor.NumLinks(), DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	if e.DynamicJoules != 3e9*1e-10 {
		t.Fatalf("dynamic = %g", e.DynamicJoules)
	}
	if e.StaticJoules <= 0 || e.TotalJoules != e.StaticJoules+e.DynamicJoules {
		t.Fatalf("bad estimate %+v", e)
	}
	if e.DynamicFraction <= 0 || e.DynamicFraction >= 1 {
		t.Fatalf("fraction = %g", e.DynamicFraction)
	}
}

func TestEnergyLongerPathsCostMore(t *testing.T) {
	tor, err := torus.New(grid.Shape{16})
	if err != nil {
		t.Fatal(err)
	}
	run := func(dst int) float64 {
		spec := &flow.Spec{}
		spec.Add(0, dst, 1e9)
		res, err := flow.Simulate(tor, spec, flow.Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := Energy(res, 0, tor.NumLinks(), DefaultEnergyModel())
		if err != nil {
			t.Fatal(err)
		}
		return e.DynamicJoules
	}
	if run(8) <= run(1) {
		t.Fatal("longer route should burn more dynamic energy")
	}
}

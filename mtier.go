// Package mtier is a flow-level interconnection-network simulator for
// exascale system design, reproducing "Design Exploration of Multi-tier
// Interconnection Networks for Exascale Systems" (Navaridas et al.,
// ICPP 2019).
//
// The package is a thin facade over the internal packages; it exposes
// everything a downstream user needs to build topologies (torus, fattree,
// generalised hypercube, and the paper's NestTree/NestGHC hybrids),
// generate the paper's eleven application workloads, place tasks, and
// simulate flow-level completion times. The one-call entry point is
// RunExperiment, which wires those stages together with the paper's
// presets:
//
//	res, _ := mtier.RunExperiment(mtier.Experiment{
//		Topo:     mtier.TopoSpec{Kind: mtier.NestGHC, Endpoints: 4096, T: 2, U: 4},
//		Workload: mtier.AllReduce,
//	})
//	fmt.Println(res.Result.Makespan)
//
// The stages remain available individually — Build, GenerateWorkload,
// Place, Simulate — for callers that need custom specs or mappings:
//
//	machine, _ := mtier.Build(mtier.TopoSpec{Kind: mtier.NestGHC, Endpoints: 4096, T: 2, U: 4})
//	spec, _ := mtier.GenerateWorkload(mtier.AllReduce, mtier.WorkloadParams{
//		Tasks: 4096, MsgBytes: 1e6,
//	})
//	res, _ := mtier.Simulate(machine, spec, mtier.SimOptions{RelEpsilon: 0.01})
//	fmt.Println(res.Makespan)
//
// See the examples directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the paper-reproduction methodology.
package mtier

import (
	"context"

	"mtier/internal/core"
	"mtier/internal/cost"
	"mtier/internal/flow"
	"mtier/internal/metrics"
	"mtier/internal/place"
	"mtier/internal/topo"
	"mtier/internal/workload"
)

// Topology is a network with deterministic endpoint-to-endpoint routing.
type Topology = topo.Topology

// TopoKind selects a topology family.
type TopoKind = core.TopoKind

// Topology families. The first four are the paper's; the rest are
// related-work baselines.
const (
	Torus3D   = core.Torus3D
	Fattree   = core.Fattree
	NestTree  = core.NestTree
	NestGHC   = core.NestGHC
	Thintree  = core.Thintree
	GHCFlat   = core.GHCFlat
	Dragonfly = core.Dragonfly
	Jellyfish = core.Jellyfish
)

// BuildTopology constructs a topology of the given family with n
// endpoints; t and u parameterise the hybrid families (subtorus nodes per
// dimension, and one uplink per u QFDBs) and are ignored by the rest.
//
// Deprecated: use Build, which takes a TopoSpec and validates the
// parameters against the chosen family instead of ignoring the
// inapplicable ones.
func BuildTopology(kind TopoKind, n, t, u int) (Topology, error) {
	return core.BuildTopology(kind, n, t, u)
}

// WorkloadKind names one of the paper's eleven traffic models.
type WorkloadKind = workload.Kind

// WorkloadParams configures a workload generator.
type WorkloadParams = workload.Params

// The eleven paper workloads, plus the collective-algorithm extensions
// (AllReduceRing, ReduceTree, BroadcastTree, AllToAll).
const (
	AllReduceRing = workload.AllReduceRing
	ReduceTree    = workload.ReduceTree
	BroadcastTree = workload.BroadcastTree
	AllToAll      = workload.AllToAll
)

// The eleven workloads.
const (
	Reduce           = workload.Reduce
	AllReduce        = workload.AllReduce
	MapReduce        = workload.MapReduce
	Sweep3D          = workload.Sweep3D
	Flood            = workload.Flood
	NearNeighbors    = workload.NearNeighbors
	NBodies          = workload.NBodies
	UnstructuredApp  = workload.UnstructuredApp
	UnstructuredMgnt = workload.UnstructuredMgnt
	UnstructuredHR   = workload.UnstructuredHR
	Bisection        = workload.Bisection
)

// GenerateWorkload builds the flow DAG of a workload; Src/Dst are task ids
// that must be placed with PlaceLinear/PlaceStrided/PlaceRandom (or used
// directly when tasks == endpoints and the identity placement is wanted).
func GenerateWorkload(k WorkloadKind, p WorkloadParams) (*FlowSpec, error) {
	return workload.Generate(k, p)
}

// FlowSpec is a workload: a DAG of flows.
type FlowSpec = flow.Spec

// SimOptions tunes a simulation.
type SimOptions = flow.Options

// SimResult reports a simulation outcome.
type SimResult = flow.Result

// DefaultBandwidth is the default 10 Gbps link capacity in bytes/second.
const DefaultBandwidth = flow.DefaultBandwidth

// Simulate runs a workload (already endpoint-indexed) on a topology.
func Simulate(t Topology, spec *FlowSpec, opt SimOptions) (*SimResult, error) {
	return flow.Simulate(t, spec, opt)
}

// SimulateContext is Simulate under a context: a canceled or
// deadline-expired context aborts the run at its next epoch boundary
// with an error wrapping ctx.Err(). A background context costs a single
// nil check per epoch.
func SimulateContext(ctx context.Context, t Topology, spec *FlowSpec, opt SimOptions) (*SimResult, error) {
	return flow.SimulateContext(ctx, t, spec, opt)
}

// PlacePolicy names a task-to-endpoint mapping strategy.
type PlacePolicy = place.Policy

// Placement policies.
const (
	PlaceLinear  = place.Linear
	PlaceStrided = place.Strided
	PlaceRandom  = place.Random
)

// Place maps a task-indexed spec onto endpoints.
func Place(spec *FlowSpec, policy PlacePolicy, tasks, endpoints int, seed int64) (*FlowSpec, error) {
	m, err := place.Mapping(policy, tasks, endpoints, seed)
	if err != nil {
		return nil, err
	}
	return place.Apply(spec, m)
}

// DistanceStats summarises a topology's distance distribution.
type DistanceStats = metrics.DistanceStats

// Distances measures the distance distribution of a topology (Table 1's
// raw material) with default options.
func Distances(t Topology) DistanceStats {
	return metrics.Distances(t, metrics.Options{})
}

// LinkLoadStats summarises the uniform-traffic channel-load analysis.
type LinkLoadStats = metrics.LinkLoadStats

// LinkLoads estimates uniform-traffic channel loads and the saturation
// throughput bound of a topology with default sampling.
func LinkLoads(t Topology) LinkLoadStats {
	return metrics.LinkLoads(t, metrics.LinkLoadOptions{})
}

// CostModel holds per-component cost and power figures.
type CostModel = cost.Model

// DefaultCostModel returns the calibrated Table 2 model.
func DefaultCostModel() CostModel { return cost.DefaultModel() }

// EnergyModel holds static and dynamic network-energy figures.
type EnergyModel = cost.EnergyModel

// EnergyEstimate is the energy bill of one simulated run.
type EnergyEstimate = cost.EnergyEstimate

// Energy estimates the network energy of a simulation result on a topology.
func Energy(t Topology, res *SimResult, m EnergyModel) (EnergyEstimate, error) {
	return cost.Energy(res, t.NumVertices()-t.NumEndpoints(), t.NumLinks(), m)
}

// DefaultEnergyModel returns 10 Gbps FPGA-transceiver-class figures.
func DefaultEnergyModel() EnergyModel { return cost.DefaultEnergyModel() }

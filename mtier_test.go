package mtier_test

import (
	"testing"

	"mtier"
)

// TestFacadeEndToEnd exercises the public API exactly as the package doc
// advertises it.
func TestFacadeEndToEnd(t *testing.T) {
	machine, err := mtier.Build(mtier.TopoSpec{Kind: mtier.NestGHC, Endpoints: 512, T: 2, U: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mtier.GenerateWorkload(mtier.AllReduce, mtier.WorkloadParams{
		Tasks: 512, MsgBytes: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mtier.Simulate(machine, spec, mtier.SimOptions{RelEpsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %g", res.Makespan)
	}
}

func TestFacadePlacement(t *testing.T) {
	machine, err := mtier.Build(mtier.TopoSpec{Kind: mtier.Fattree, Endpoints: 512})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mtier.GenerateWorkload(mtier.MapReduce, mtier.WorkloadParams{
		Tasks: 64, MsgBytes: 1e5,
	})
	if err != nil {
		t.Fatal(err)
	}
	placed, err := mtier.Place(spec, mtier.PlaceStrided, 64, machine.NumEndpoints(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mtier.Simulate(machine, placed, mtier.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("empty result")
	}
}

func TestFacadeMetricsAndCost(t *testing.T) {
	machine, err := mtier.Build(mtier.TopoSpec{Kind: mtier.Torus3D, Endpoints: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := mtier.Distances(machine)
	if s.Mean <= 0 || s.Max <= 0 {
		t.Fatalf("bad stats: %+v", s)
	}
	if err := mtier.DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
	ll := mtier.LinkLoads(machine)
	if ll.MaxLoad <= 0 || ll.Throughput <= 0 || ll.Throughput > 1 {
		t.Fatalf("bad link loads: %+v", ll)
	}
}

func TestFacadeEnergyAndAdaptive(t *testing.T) {
	machine, err := mtier.Build(mtier.TopoSpec{Kind: mtier.GHCFlat, Endpoints: 256})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := mtier.GenerateWorkload(mtier.UnstructuredApp, mtier.WorkloadParams{
		Tasks: machine.NumEndpoints(), MsgBytes: 1e5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mtier.Simulate(machine, spec, mtier.SimOptions{AdaptiveRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := mtier.Energy(machine, res, mtier.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	if e.TotalJoules <= 0 || e.DynamicJoules <= 0 {
		t.Fatalf("bad energy: %+v", e)
	}
}

func TestFacadeExtensionKinds(t *testing.T) {
	for _, kind := range []mtier.TopoKind{mtier.Thintree, mtier.Dragonfly, mtier.Jellyfish} {
		top, err := mtier.Build(mtier.TopoSpec{Kind: kind, Endpoints: 200})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if top.NumEndpoints() < 200 {
			t.Fatalf("%s too small", kind)
		}
	}
}
